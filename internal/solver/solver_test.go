package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/costfn"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/numeric"
)

// ---------- helpers ----------

// randomInstance builds a feasible random instance with up to maxD types,
// maxM servers per type, and maxT slots, drawing from the mixed cost
// families.
func randomInstance(rng *rand.Rand, maxD, maxM, maxT int) *model.Instance {
	d := 1 + rng.Intn(maxD)
	T := 1 + rng.Intn(maxT)
	types := make([]model.ServerType, d)
	totalCap := 0.0
	for j := range types {
		count := 1 + rng.Intn(maxM)
		capacity := 0.5 + rng.Float64()*2
		var f costfn.Func
		switch rng.Intn(4) {
		case 0:
			f = costfn.Constant{C: rng.Float64() * 3}
		case 1:
			f = costfn.Affine{Idle: rng.Float64() * 2, Rate: rng.Float64() * 3}
		case 2:
			f = costfn.Power{Idle: rng.Float64(), Coef: 0.1 + rng.Float64()*2, Exp: 1 + rng.Float64()*2}
		default:
			s1 := rng.Float64()
			s2 := s1 + rng.Float64() // slopes non-decreasing → convex
			v1 := 0.2 + s1*capacity/2
			f = costfn.MustPiecewiseLinear(
				[]float64{0, capacity / 2, capacity},
				[]float64{0.2, v1, v1 + s2*capacity/2},
			)
		}
		types[j] = model.ServerType{
			Name:       "t",
			Count:      count,
			SwitchCost: rng.Float64() * 8,
			MaxLoad:    capacity,
			Cost:       model.Static{F: f},
		}
		totalCap += float64(count) * capacity
	}
	lambda := make([]float64, T)
	for t := range lambda {
		lambda[t] = rng.Float64() * totalCap * 0.9
	}
	return &model.Instance{Types: types, Lambda: lambda}
}

// bruteForceOptimal enumerates all schedules over the full lattice.
// Exponential: only for tiny instances.
func bruteForceOptimal(ins *model.Instance) (model.Schedule, float64) {
	eval := model.NewEvaluator(ins)
	g := grid.NewFull(countsAt(ins, 1))
	T := ins.T()
	d := ins.D()

	best := math.Inf(1)
	var bestSched model.Schedule
	cfg := make(model.Config, d)
	prev := make(model.Config, d)
	cur := make(model.Schedule, T)

	var rec func(t int, prevCfg model.Config, acc float64)
	rec = func(t int, prevCfg model.Config, acc float64) {
		if acc >= best {
			return
		}
		if t > T {
			best = acc
			bestSched = cur.Clone()
			return
		}
		gt := g
		if ins.TimeVarying() {
			gt = grid.NewFull(countsAt(ins, t))
		}
		for idx := 0; idx < gt.Size(); idx++ {
			gt.Decode(idx, cfg)
			cost := eval.G(t, cfg) + ins.SwitchCost(prevCfg, cfg)
			if math.IsInf(cost, 1) {
				continue
			}
			cur[t-1] = cfg.Clone()
			rec(t+1, cur[t-1], acc+cost)
		}
	}
	copy(prev, make([]int, d))
	rec(1, prev, 0)
	return bestSched, best
}

func countsAt(ins *model.Instance, t int) []int {
	m := make([]int, ins.D())
	for j := range m {
		m[j] = ins.CountAt(t, j)
	}
	return m
}

// ---------- exact solver ----------

func TestSolveOptimalHandComputedHomogeneous(t *testing.T) {
	// One type, 2 servers, cap 1, β=3, f(z)=1 (constant). Demands force
	// 1 then 2 then 1 servers. Optimal: hold 2 servers during the dip?
	// T=3, λ = (1, 2, 1): x=(1,2,2) or (1,2,1) — power-down free, so
	// (1,2,1) and (1,2,2) differ by idle cost 1; optimal keeps 1.
	// Cost: op 1+2+1 = 4; switch 3 (slot1) + 3 (slot2) = 6 → 10.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 2, SwitchCost: 3, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{1, 2, 1},
	}
	res, err := SolveOptimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost()-10) > 1e-9 {
		t.Errorf("cost = %g, want 10", res.Cost())
	}
	want := model.Schedule{{1}, {2}, {1}}
	for i := range want {
		if !res.Schedule[i].Equal(want[i]) {
			t.Errorf("slot %d: %v, want %v", i+1, res.Schedule[i], want[i])
		}
	}
}

func TestSolveOptimalSkiRentalHold(t *testing.T) {
	// β=10 dwarfs idle cost 1: across a short gap it is cheaper to hold
	// the server up than to power-cycle.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 10, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{1, 0, 0, 1},
	}
	res, err := SolveOptimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Hold: op 4·1, switch 10 → 14. Cycle: op 2, switch 20 → 22.
	if math.Abs(res.Cost()-14) > 1e-9 {
		t.Errorf("cost = %g, want 14 (hold through the gap)", res.Cost())
	}
	for tt := 0; tt < 4; tt++ {
		if res.Schedule[tt][0] != 1 {
			t.Errorf("slot %d: server should stay up", tt+1)
		}
	}
}

func TestSolveOptimalPowerCycleWhenCheap(t *testing.T) {
	// β=1, idle 5: power-cycling beats holding across a long gap.
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 1, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 5}},
		}},
		Lambda: []float64{1, 0, 0, 1},
	}
	res, err := SolveOptimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle: op 10, switch 2 → 12. Hold: op 20, switch 1 → 21.
	if math.Abs(res.Cost()-12) > 1e-9 {
		t.Errorf("cost = %g, want 12 (power cycle)", res.Cost())
	}
	if res.Schedule[1][0] != 0 || res.Schedule[2][0] != 0 {
		t.Error("server should be down during the gap")
	}
}

func TestSolveOptimalHeterogeneousPrefersEfficientType(t *testing.T) {
	// Fast type (cap 4, idle 3) vs slow type (cap 1, idle 1): at high
	// load one fast server beats four slow ones.
	ins := &model.Instance{
		Types: []model.ServerType{
			{Count: 4, SwitchCost: 1, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Count: 1, SwitchCost: 1, MaxLoad: 4,
				Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.25}}},
		},
		Lambda: []float64{4, 4, 4},
	}
	res, err := SolveOptimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Fast-only: op 3·(3+1) = 12, switch 1 → 13.
	// Slow-only: op 3·(4+4) = 24, switch 4 → 28.
	if math.Abs(res.Cost()-13) > 1e-9 {
		t.Errorf("cost = %g, want 13", res.Cost())
	}
	for tt := range res.Schedule {
		if res.Schedule[tt][1] != 1 || res.Schedule[tt][0] != 0 {
			t.Errorf("slot %d: %v, want (0, 1)", tt+1, res.Schedule[tt])
		}
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		ins := randomInstance(rng, 2, 2, 4)
		res, err := SolveOptimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		_, bfCost := bruteForceOptimal(ins)
		if !numeric.AlmostEqual(res.Cost(), bfCost, 1e-6) {
			t.Fatalf("case %d: DP %g vs brute force %g", i, res.Cost(), bfCost)
		}
		if err := ins.Feasible(res.Schedule); err != nil {
			t.Fatalf("case %d: schedule infeasible: %v", i, err)
		}
	}
}

func TestSolveNaiveMatchesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 30; i++ {
		ins := randomInstance(rng, 3, 3, 5)
		fast, err := Solve(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Solve(ins, Options{Naive: true})
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(fast.Cost(), naive.Cost(), 1e-9) {
			t.Fatalf("case %d: fast %g vs naive %g", i, fast.Cost(), naive.Cost())
		}
	}
}

func TestSolveInfeasibleInstance(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{{
			Count: 1, SwitchCost: 1, MaxLoad: 1,
			Cost: model.Static{F: costfn.Constant{C: 1}},
		}},
		Lambda: []float64{2},
	}
	if _, err := SolveOptimal(ins); err == nil {
		t.Error("expected error for infeasible instance")
	}
}

func TestOptimalCostMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		ins := randomInstance(rng, 3, 3, 6)
		res, err := SolveOptimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		c, err := OptimalCost(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(res.Cost(), c, 1e-9) {
			t.Fatalf("case %d: Solve %g vs OptimalCost %g", i, res.Cost(), c)
		}
	}
}

// ---------- relaxation ----------

func TestRelaxMatchesNaiveProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(3)
		betas := make([]float64, d)
		fromAxes := make([]grid.Axis, d)
		toAxes := make([]grid.Axis, d)
		for j := 0; j < d; j++ {
			betas[j] = rng.Float64() * 5
			fromAxes[j] = randomAxis(rng)
			toAxes[j] = randomAxis(rng)
		}
		from := grid.New(fromAxes)
		to := grid.New(toAxes)
		prev := make([]float64, from.Size())
		for i := range prev {
			prev[i] = rng.Float64() * 20
			if rng.Intn(8) == 0 {
				prev[i] = math.Inf(1)
			}
		}
		rx := newRelaxer(betas)
		fast := rx.relax(prev, from, to, make([]float64, to.Size()))
		naive := relaxNaive(prev, from, to, betas)
		for i := range naive {
			if !numeric.AlmostEqual(fast[i], naive[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomAxis(rng *rand.Rand) grid.Axis {
	m := 1 + rng.Intn(6)
	if rng.Intn(2) == 0 {
		return grid.FullAxis(m)
	}
	return grid.ReducedAxis(3+rng.Intn(12), 1.3+rng.Float64())
}

func TestRelaxPreservesInput(t *testing.T) {
	betas := []float64{2, 3}
	g := grid.NewFull([]int{2, 2})
	prev := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]float64(nil), prev...)
	rx := newRelaxer(betas)
	rx.relax(prev, g, g, make([]float64, g.Size()))
	for i := range prev {
		if prev[i] != orig[i] {
			t.Fatal("relax must not mutate its input layer")
		}
	}
}

// ---------- approximation ----------

func TestSolveApproxBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		ins := randomInstance(rng, 2, 12, 6)
		opt, err := SolveOptimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{2, 1, 0.5} {
			apx, err := SolveApprox(ins, eps)
			if err != nil {
				t.Fatal(err)
			}
			bound := (1 + eps) * opt.Cost()
			if !numeric.LessEqual(apx.Cost(), bound*(1+1e-9), 1e-9) {
				t.Fatalf("case %d eps=%g: approx %g exceeds bound %g (opt %g)",
					i, eps, apx.Cost(), bound, opt.Cost())
			}
			if apx.Cost() < opt.Cost()-1e-6*(1+opt.Cost()) {
				t.Fatalf("case %d: approx %g below optimal %g", i, apx.Cost(), opt.Cost())
			}
			if err := ins.Feasible(apx.Schedule); err != nil {
				t.Fatalf("case %d: approx schedule infeasible: %v", i, err)
			}
		}
	}
}

func TestSolveApproxLatticeSmaller(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{
			{Count: 1000, SwitchCost: 2, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Count: 500, SwitchCost: 5, MaxLoad: 4,
				Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.5}}},
		},
		Lambda: []float64{100, 900, 400},
	}
	apx, err := SolveApprox(ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	full := (1000 + 1) * (500 + 1)
	if apx.LatticeSize >= full/50 {
		t.Errorf("reduced lattice %d not much smaller than full %d", apx.LatticeSize, full)
	}
}

func TestSolveApproxRejectsBadEps(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(1)), 1, 2, 2)
	if _, err := SolveApprox(ins, 0); err == nil {
		t.Error("eps = 0 should error")
	}
	if _, err := SolveApprox(ins, -1); err == nil {
		t.Error("eps < 0 should error")
	}
}

func TestApproxReferenceCorridor(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30; i++ {
		ins := randomInstance(rng, 2, 10, 6)
		opt, err := SolveOptimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		gamma := 1.25 + rng.Float64()
		ref, err := ApproxReference(ins, opt.Schedule, gamma)
		if err != nil {
			t.Fatal(err)
		}
		// Invariant (19): x* <= x' <= (2γ−1)x*.
		for tt := 1; tt <= ins.T(); tt++ {
			for j := 0; j < ins.D(); j++ {
				xs := opt.Schedule[tt-1][j]
				xp := ref[tt-1][j]
				if xp < xs {
					t.Fatalf("case %d slot %d type %d: x'=%d below x*=%d", i, tt, j, xp, xs)
				}
				if float64(xp) > (2*gamma-1)*float64(xs)+1e-9 {
					t.Fatalf("case %d slot %d type %d: x'=%d above corridor (x*=%d, γ=%g)",
						i, tt, j, xp, xs, gamma)
				}
			}
		}
		if err := ins.Feasible(ref); err != nil {
			t.Fatalf("case %d: X' infeasible: %v", i, err)
		}
		// The reduced-lattice shortest path can only beat X'.
		apx, err := Solve(ins, Options{Gamma: gamma})
		if err != nil {
			t.Fatal(err)
		}
		refCost := model.NewEvaluator(ins).Cost(ref).Total()
		if apx.Cost() > refCost*(1+1e-9)+1e-9 {
			t.Fatalf("case %d: shortest path %g worse than X' %g", i, apx.Cost(), refCost)
		}
	}
}

func TestApproxReferenceArgErrors(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(1)), 1, 2, 3)
	if _, err := ApproxReference(ins, make(model.Schedule, ins.T()), 1); err == nil {
		t.Error("gamma <= 1 should error")
	}
	if _, err := ApproxReference(ins, make(model.Schedule, ins.T()+1), 2); err == nil {
		t.Error("length mismatch should error")
	}
}

// ---------- time-varying sizes (Section 4.3) ----------

func TestSolveTimeVaryingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 30; i++ {
		ins := randomInstance(rng, 2, 3, 4)
		// Randomly shrink per-slot counts while keeping feasibility.
		counts := make([][]int, ins.T())
		for tt := 1; tt <= ins.T(); tt++ {
			row := make([]int, ins.D())
			for j := range row {
				row[j] = ins.Types[j].Count
			}
			for attempts := 0; attempts < 4; attempts++ {
				j := rng.Intn(ins.D())
				if row[j] == 0 {
					continue
				}
				row[j]--
				cap := 0.0
				for k := range row {
					cap += float64(row[k]) * ins.Types[k].MaxLoad
				}
				if cap < ins.Lambda[tt-1] {
					row[j]++ // revert: would break feasibility
				}
			}
			counts[tt-1] = row
		}
		ins.Counts = counts
		if err := ins.Validate(); err != nil {
			t.Fatalf("case %d: generated instance invalid: %v", i, err)
		}
		res, err := SolveOptimal(ins)
		if err != nil {
			t.Fatal(err)
		}
		_, bfCost := bruteForceOptimal(ins)
		if !numeric.AlmostEqual(res.Cost(), bfCost, 1e-6) {
			t.Fatalf("case %d: DP %g vs brute force %g", i, res.Cost(), bfCost)
		}
		if err := ins.Feasible(res.Schedule); err != nil {
			t.Fatalf("case %d: infeasible: %v", i, err)
		}
	}
}

func TestSolveTimeVaryingApproxFeasible(t *testing.T) {
	ins := &model.Instance{
		Types: []model.ServerType{
			{Count: 40, SwitchCost: 3, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
		},
		Lambda: []float64{10, 30, 5, 20},
		Counts: [][]int{{40}, {40}, {10}, {40}}, // maintenance at slot 3
	}
	apx, err := SolveApprox(ins, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(apx.Schedule); err != nil {
		t.Fatalf("approx schedule violates time-varying sizes: %v", err)
	}
	if apx.Schedule[2][0] > 10 {
		t.Error("slot 3 must respect the reduced fleet")
	}
}

// ---------- prefix tracker ----------

func TestPrefixTrackerMatchesPrefixSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 25; i++ {
		ins := randomInstance(rng, 2, 3, 6)
		tr, err := NewPrefixTracker(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for tt := 1; tt <= ins.T(); tt++ {
			xhat, val := tr.Advance()
			pres, err := SolveOptimal(ins.Prefix(tt))
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.AlmostEqual(val, pres.Cost(), 1e-9) {
				t.Fatalf("case %d t=%d: tracker %g vs prefix solve %g", i, tt, val, pres.Cost())
			}
			// The tracker's configuration must attain the optimum as the
			// final state of some optimal prefix schedule: verify its DP
			// value matches by re-solving with the config pinned.
			if got := pres.Schedule[tt-1]; !got.Equal(xhat) {
				// Ties can differ; verify cost equivalence instead.
				pinned := pinFinalConfig(ins.Prefix(tt), xhat)
				if !numeric.AlmostEqual(pinned, pres.Cost(), 1e-9) {
					t.Fatalf("case %d t=%d: tracker config %v not optimal (cost %g vs %g)",
						i, tt, xhat, pinned, pres.Cost())
				}
			}
		}
		if !tr.Done() {
			t.Error("tracker should be done")
		}
	}
}

// pinFinalConfig computes the optimal cost of the instance subject to the
// final configuration being exactly x, via an independent naive DP.
func pinFinalConfig(ins *model.Instance, x model.Config) float64 {
	return naiveDPPinned(ins, x)
}

// naiveDPPinned runs an O(T·|M|²) DP and returns the optimal cost among
// schedules whose final configuration is x.
func naiveDPPinned(ins *model.Instance, x model.Config) float64 {
	eval := model.NewEvaluator(ins)
	g := grid.NewFull(countsAt(ins, 1))
	d := ins.D()
	cfg := make(model.Config, d)
	layer := make([]float64, g.Size())
	for idx := range layer {
		g.Decode(idx, cfg)
		zero := make(model.Config, d)
		layer[idx] = eval.G(1, cfg) + ins.SwitchCost(zero, cfg)
	}
	prevCfg := make(model.Config, d)
	for t := 2; t <= ins.T(); t++ {
		next := make([]float64, g.Size())
		for idx := range next {
			g.Decode(idx, cfg)
			best := math.Inf(1)
			for p := range layer {
				g.Decode(p, prevCfg)
				c := layer[p] + ins.SwitchCost(prevCfg, cfg)
				if c < best {
					best = c
				}
			}
			next[idx] = best + eval.G(t, cfg)
		}
		layer = next
	}
	idx, ok := g.Encode(x)
	if !ok {
		return math.Inf(1)
	}
	return layer[idx]
}

func TestPrefixTrackerPanicsPastEnd(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(1)), 1, 2, 1)
	tr, err := NewPrefixTracker(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Advance()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.Advance()
}

func TestPrefixTrackerNaiveMatchesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 15; i++ {
		ins := randomInstance(rng, 3, 3, 5)
		a, _ := NewPrefixTracker(ins, Options{})
		b, _ := NewPrefixTracker(ins, Options{Naive: true})
		for tt := 1; tt <= ins.T(); tt++ {
			xa, va := a.Advance()
			xb, vb := b.Advance()
			if !numeric.AlmostEqual(va, vb, 1e-9) {
				t.Fatalf("case %d t=%d: values differ %g vs %g", i, tt, va, vb)
			}
			if !xa.Equal(xb) {
				t.Fatalf("case %d t=%d: argmin configs differ %v vs %v", i, tt, xa, xb)
			}
		}
	}
}

func TestPrefixTrackerLatticeAccess(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(2)), 2, 3, 3)
	tr, _ := NewPrefixTracker(ins, Options{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Lattice before Advance should panic")
			}
		}()
		tr.Lattice()
	}()
	tr.Advance()
	if tr.Lattice() == nil {
		t.Error("Lattice should be available after Advance")
	}
	if tr.T() != 1 {
		t.Error("T should count advances")
	}
}

// ---------- benchmarks ----------

func benchInstance(T, m int) *model.Instance {
	lambda := make([]float64, T)
	for t := range lambda {
		lambda[t] = float64(m) / 2 * (1 + math.Sin(2*math.Pi*float64(t)/24)) * 0.9
	}
	return &model.Instance{
		Types: []model.ServerType{
			{Count: m, SwitchCost: 4, MaxLoad: 1,
				Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
			{Count: m / 2, SwitchCost: 10, MaxLoad: 4,
				Cost: model.Static{F: costfn.Power{Idle: 2, Coef: 1, Exp: 2}}},
		},
		Lambda: lambda,
	}
}

func BenchmarkSolveOptimalT48M16(b *testing.B) {
	ins := benchInstance(48, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveOptimal(ins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveApproxT48M64Eps05(b *testing.B) {
	ins := benchInstance(48, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveApprox(ins, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelaxFastD3(b *testing.B) {
	g := grid.NewFull([]int{15, 15, 15})
	betas := []float64{1, 2, 3}
	prev := make([]float64, g.Size())
	for i := range prev {
		prev[i] = float64(i % 97)
	}
	rx := newRelaxer(betas)
	dst := make([]float64, g.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx.relax(prev, g, g, dst)
	}
}

func BenchmarkRelaxNaiveD3(b *testing.B) {
	g := grid.NewFull([]int{7, 7, 7})
	betas := []float64{1, 2, 3}
	prev := make([]float64, g.Size())
	for i := range prev {
		prev[i] = float64(i % 97)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relaxNaive(prev, g, g, betas)
	}
}
