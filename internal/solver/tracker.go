package solver

import (
	"repro/internal/grid"
	"repro/internal/model"
)

// PrefixTracker incrementally maintains the optimal-cost DP layer for the
// growing prefix instances I_1, I_2, …, I_T. The online algorithms of
// Sections 2 and 3 need, at every slot t, the last configuration x̂^t_t of
// an optimal schedule for I_t; because power-downs are free, that is the
// argmin of the forward DP layer — so the whole online run costs no more
// than a single offline DP sweep, O(T·|M|·d) plus T·|M| operating-cost
// evaluations.
//
// The tracker only reads slot t's job volume and cost functions during the
// t-th Advance call, so driving an online algorithm with it respects the
// online information model even though the Instance value is materialised
// up front.
//
// Ties in the argmin are broken towards the lowest lattice index, i.e. the
// lexicographically smallest configuration; any deterministic rule
// satisfies the paper's requirements.
type PrefixTracker struct {
	ins   *model.Instance
	le    *layerEvaluator
	grids *gridSeq
	rx    *relaxer
	naive bool
	betas []float64

	t     int       // slots processed so far
	layer []float64 // D_t over grids.at(t)
	spare []float64 // ping-pong buffer for the next layer
	cfg   model.Config
}

// NewPrefixTracker prepares a tracker for the instance. Options follow
// Solve: Gamma > 1 tracks prefix optima over the reduced lattice (used by
// the scalable variants of the online algorithms; the competitive proofs
// assume the exact lattice).
func NewPrefixTracker(ins *model.Instance, opts Options) (*PrefixTracker, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	grids, err := buildGrids(ins, opts.Gamma)
	if err != nil {
		return nil, err
	}
	betas := make([]float64, ins.D())
	for j, st := range ins.Types {
		betas[j] = st.SwitchCost
	}
	return &PrefixTracker{
		ins:   ins,
		le:    newLayerEvaluator(ins, opts.Workers),
		grids: grids,
		rx:    newRelaxer(betas),
		naive: opts.Naive,
		betas: betas,
		cfg:   make(model.Config, ins.D()),
	}, nil
}

// T returns the number of slots processed so far.
func (p *PrefixTracker) T() int { return p.t }

// Done reports whether every slot has been consumed.
func (p *PrefixTracker) Done() bool { return p.t >= p.ins.T() }

// Advance consumes the next time slot and returns x̂^t_t — the final
// configuration of an optimal schedule for the prefix instance I_t — along
// with C(X̂^t), the optimal prefix cost. The returned configuration is a
// fresh copy. Advance panics when all slots are consumed.
func (p *PrefixTracker) Advance() (model.Config, float64) {
	if p.Done() {
		panic("solver: PrefixTracker advanced past the last slot")
	}
	p.t++
	t := p.t
	g := p.grids.at(t)

	var layer []float64
	if t == 1 {
		layer = p.grow(&p.spare, g.Size())
		for idx := range layer {
			g.Decode(idx, p.cfg)
			sw := 0.0
			for j := range p.betas {
				sw += p.betas[j] * float64(p.cfg[j])
			}
			layer[idx] = sw
		}
	} else if p.naive {
		layer = relaxNaive(p.layer, p.grids.at(t-1), g, p.betas)
	} else {
		layer = p.rx.relax(p.layer, p.grids.at(t-1), g, p.grow(&p.spare, g.Size()))
	}
	p.le.addG(layer, t, g)

	// Swap buffers: the old layer becomes next round's spare.
	p.layer, p.spare = layer, p.layer

	idx, val := argmin(layer)
	g.Decode(idx, p.cfg)
	return p.cfg.Clone(), val
}

// OptRange returns the lexicographically smallest and largest
// configurations attaining the current prefix optimum (up to relative
// tolerance 1e-12). For homogeneous instances (d = 1) these are the lower
// and upper envelopes of optimal prefix end states used by lazy
// capacity provisioning. Only valid after Advance.
func (p *PrefixTracker) OptRange() (lo, hi model.Config) {
	if p.t == 0 {
		panic("solver: OptRange before first Advance")
	}
	g := p.grids.at(p.t)
	_, best := argmin(p.layer)
	tol := 1e-12 * (1 + best)
	loIdx, hiIdx := -1, -1
	for i, v := range p.layer {
		if v <= best+tol {
			if loIdx < 0 {
				loIdx = i
			}
			hiIdx = i
		}
	}
	lo = make(model.Config, p.ins.D())
	hi = make(model.Config, p.ins.D())
	g.Decode(loIdx, lo)
	g.Decode(hiIdx, hi)
	return lo, hi
}

// Lattice returns the lattice used at the current slot; it is only valid
// after the first Advance.
func (p *PrefixTracker) Lattice() *grid.Grid {
	if p.t == 0 {
		panic("solver: Lattice before first Advance")
	}
	return p.grids.at(p.t)
}

// grow resizes *buf to n elements, allocating if needed.
func (p *PrefixTracker) grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}
