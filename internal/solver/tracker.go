package solver

import (
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/numeric"
)

// PrefixTracker incrementally maintains the optimal-cost DP layer for the
// growing prefix instances I_1, I_2, …. The online algorithms of
// Sections 2 and 3 need, at every slot t, the last configuration x̂^t_t of
// an optimal schedule for I_t; because power-downs are free, that is the
// argmin of the forward DP layer — so the whole online run costs no more
// than a single offline DP sweep, O(T·|M|·d) plus T·|M| operating-cost
// evaluations.
//
// The tracker has two construction modes:
//
//   - NewPrefixTracker pre-binds a full instance and consumes it slot by
//     slot via Advance (the batch/replay driver). Only slot t's job volume
//     and cost functions are read during the t-th Advance call, so the
//     online information model is respected even though the Instance value
//     is materialised up front.
//   - NewStreamTracker binds only the fleet template; slot data arrives
//     push-style via Push(SlotInput), making the information model hold by
//     construction. Both modes share the same relax/evaluate code path and
//     produce bit-identical layers for equal slot data.
//
// Ties in the argmin are broken towards the lowest lattice index, i.e. the
// lexicographically smallest configuration; any deterministic rule
// satisfies the paper's requirements.
type PrefixTracker struct {
	ins   *model.Instance
	acc   *model.Accumulator // non-nil in stream mode; ins aliases acc.Instance()
	le    *layerEvaluator
	grids *gridSeq // batch mode lattice sequence (nil in stream mode)
	rx    *relaxer
	naive bool
	gamma float64
	betas []float64

	t     int       // slots processed so far
	layer []float64 // D_t over the slot-t lattice
	spare []float64 // ping-pong buffer for the next layer
	cfg   model.Config

	// Stream-mode lattice state: the previous and current slot's grids plus
	// the counts the current grid was built for (grids are reused while the
	// counts stay identical, so static fleets keep a single grid).
	prevGrid, curGrid *grid.Grid
	curCounts         []int
}

// NewPrefixTracker prepares a tracker for a pre-bound instance. Options
// follow Solve: Gamma > 1 tracks prefix optima over the reduced lattice
// (used by the scalable variants of the online algorithms; the competitive
// proofs assume the exact lattice).
func NewPrefixTracker(ins *model.Instance, opts Options) (*PrefixTracker, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	grids, err := buildGrids(ins, opts.Gamma)
	if err != nil {
		return nil, err
	}
	p := newTracker(ins, opts)
	p.grids = grids
	return p, nil
}

// NewStreamTracker prepares a push-mode tracker for the fleet template:
// slot data arrives through Push instead of being read from a pre-bound
// instance. The tracker owns a model.Accumulator that grows one slot per
// Push.
func NewStreamTracker(types []model.ServerType, opts Options) (*PrefixTracker, error) {
	acc, err := model.NewAccumulator(types)
	if err != nil {
		return nil, err
	}
	p := newTracker(acc.Instance(), opts)
	p.acc = acc
	return p, nil
}

// newTracker builds the mode-independent parts.
func newTracker(ins *model.Instance, opts Options) *PrefixTracker {
	betas := make([]float64, ins.D())
	for j, st := range ins.Types {
		betas[j] = st.SwitchCost
	}
	return &PrefixTracker{
		ins:   ins,
		le:    newLayerEvaluator(ins, opts),
		rx:    newRelaxer(betas),
		naive: opts.Naive,
		gamma: opts.Gamma,
		betas: betas,
		cfg:   make(model.Config, ins.D()),
	}
}

// T returns the number of slots processed so far.
func (p *PrefixTracker) T() int { return p.t }

// Exact reports whether the tracker follows the full configuration
// lattice (Gamma <= 1), i.e. its prefix optima are exact rather than
// (2γ−1)-approximate. Telemetry consumers (stream.Session) only reuse
// exact trackers.
func (p *PrefixTracker) Exact() bool { return p.gamma <= 1 }

// Done reports whether every slot of a pre-bound instance has been
// consumed. Stream-mode trackers have no horizon and are never done.
func (p *PrefixTracker) Done() bool { return p.acc == nil && p.t >= p.ins.T() }

// Advance consumes the next time slot of the pre-bound instance and
// returns x̂^t_t — the final configuration of an optimal schedule for the
// prefix instance I_t — along with C(X̂^t), the optimal prefix cost. The
// returned configuration is a fresh copy. Advance panics when all slots
// are consumed or when the tracker is in stream mode.
func (p *PrefixTracker) Advance() (model.Config, float64) {
	if p.acc != nil {
		panic("solver: Advance on a stream tracker (use Push)")
	}
	if p.Done() {
		panic("solver: PrefixTracker advanced past the last slot")
	}
	var prev *grid.Grid
	if p.t >= 1 {
		prev = p.grids.at(p.t)
	}
	cfg, val := p.step(p.grids.at(p.t+1), prev)
	return cfg.Clone(), val
}

// Push appends one slot of data and returns x̂^t_t and the optimal prefix
// cost. The returned configuration is tracker-owned scratch, valid until
// the next Push; clone it to retain. Push reports an error for infeasible
// or out-of-order slots (the layer is unchanged in that case).
func (p *PrefixTracker) Push(in model.SlotInput) (model.Config, float64, error) {
	if p.acc == nil {
		panic("solver: Push on a pre-bound tracker (use Advance)")
	}
	if err := p.acc.Push(in); err != nil {
		return nil, 0, err
	}
	t := p.t + 1
	if p.curGrid == nil || !numeric.EqualInts(p.ins.Counts[t-1], p.curCounts) {
		axes := make([]grid.Axis, p.ins.D())
		for j := range axes {
			m := p.ins.Counts[t-1][j]
			if p.gamma > 1 {
				axes[j] = grid.ReducedAxis(m, p.gamma)
			} else {
				axes[j] = grid.FullAxis(m)
			}
		}
		p.prevGrid, p.curGrid = p.curGrid, grid.New(axes)
		p.curCounts = append(p.curCounts[:0], p.ins.Counts[t-1]...)
	} else {
		p.prevGrid = p.curGrid
	}
	cfg, val := p.step(p.curGrid, p.prevGrid)
	return cfg, val, nil
}

// step advances the DP layer onto lattice g for slot p.t+1; prev is the
// previous slot's lattice (ignored for the first slot). It returns
// tracker-owned scratch.
func (p *PrefixTracker) step(g, prev *grid.Grid) (model.Config, float64) {
	p.t++
	t := p.t

	var layer []float64
	if t == 1 {
		layer = p.grow(&p.spare, g.Size())
		for idx := range layer {
			g.Decode(idx, p.cfg)
			sw := 0.0
			for j := range p.betas {
				sw += p.betas[j] * float64(p.cfg[j])
			}
			layer[idx] = sw
		}
	} else if p.naive {
		layer = relaxNaive(p.layer, prev, g, p.betas)
	} else {
		layer = p.rx.relax(p.layer, prev, g, p.grow(&p.spare, g.Size()))
	}
	p.le.addG(layer, t, g)

	// Swap buffers: the old layer becomes next round's spare.
	p.layer, p.spare = layer, p.layer

	idx, val := argmin(layer)
	g.Decode(idx, p.cfg)
	return p.cfg, val
}

// OptRange returns the lexicographically smallest and largest
// configurations attaining the current prefix optimum (up to relative
// tolerance 1e-12). For homogeneous instances (d = 1) these are the lower
// and upper envelopes of optimal prefix end states used by lazy
// capacity provisioning. Only valid after the first Advance/Push.
func (p *PrefixTracker) OptRange() (lo, hi model.Config) {
	if p.t == 0 {
		panic("solver: OptRange before first slot")
	}
	g := p.Lattice()
	_, best := argmin(p.layer)
	tol := 1e-12 * (1 + best)
	loIdx, hiIdx := -1, -1
	for i, v := range p.layer {
		if v <= best+tol {
			if loIdx < 0 {
				loIdx = i
			}
			hiIdx = i
		}
	}
	lo = make(model.Config, p.ins.D())
	hi = make(model.Config, p.ins.D())
	g.Decode(loIdx, lo)
	g.Decode(hiIdx, hi)
	return lo, hi
}

// Lattice returns the lattice used at the current slot; it is only valid
// after the first Advance/Push.
func (p *PrefixTracker) Lattice() *grid.Grid {
	if p.t == 0 {
		panic("solver: Lattice before first slot")
	}
	if p.acc != nil {
		return p.curGrid
	}
	return p.grids.at(p.t)
}

// grow resizes *buf to n elements, allocating if needed.
func (p *PrefixTracker) grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}
