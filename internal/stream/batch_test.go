package stream

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/model"
)

// advisoriesEqual compares advisories bit-for-bit (Configs by value,
// floats by bits so -0/NaN differences would not hide).
func advisoriesEqual(a, b Advisory) bool {
	return a.Slot == b.Slot &&
		math.Float64bits(a.Lambda) == math.Float64bits(b.Lambda) &&
		a.Config.Equal(b.Config) &&
		a.Active == b.Active &&
		math.Float64bits(a.Operating) == math.Float64bits(b.Operating) &&
		math.Float64bits(a.Switching) == math.Float64bits(b.Switching) &&
		math.Float64bits(a.CumCost) == math.Float64bits(b.CumCost) &&
		math.Float64bits(a.Opt) == math.Float64bits(b.Opt) &&
		math.Float64bits(a.Ratio) == math.Float64bits(b.Ratio) &&
		a.Pending == b.Pending
}

// PushBatch is repeated Push: for several batch sizes (including ones
// that straddle the trace end) the advisories, telemetry, cumulative
// state and checkpoint are bit-identical to the slot-at-a-time session.
func TestPushBatchMatchesRepeatedPush(t *testing.T) {
	types := sharingFleet()
	trace := sharingTrace()

	mk := func() *Session {
		alg, err := core.NewAlgorithmB(types)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := New(alg, types, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	serial := mk()
	var want []Advisory
	for _, lambda := range trace {
		advs, err := serial.FeedDemand(lambda)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, advs...)
	}
	wantCp := serial.Checkpoint()

	for _, batch := range []int{1, 2, 7, 16, len(trace), len(trace) + 9} {
		sess := mk()
		ins := make([]model.SlotInput, 0, batch)
		advs := make([]Advisory, batch)
		var got []Advisory
		for start := 0; start < len(trace); start += batch {
			ins = ins[:0]
			for _, lambda := range trace[start:min(start+batch, len(trace))] {
				ins = append(ins, model.SlotInput{Lambda: lambda})
			}
			n, err := sess.PushBatch(ins, advs)
			if err != nil {
				t.Fatalf("batch=%d start=%d: %v", batch, start, err)
			}
			if n != len(ins) {
				t.Fatalf("batch=%d start=%d: decided %d of %d (fully online algorithm)", batch, start, n, len(ins))
			}
			for i := 0; i < n; i++ {
				cp := advs[i]
				cp.Config = append(model.Config(nil), advs[i].Config...)
				got = append(got, cp)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("batch=%d decided %d slots, serial decided %d", batch, len(got), len(want))
		}
		for i := range want {
			if !advisoriesEqual(got[i], want[i]) {
				t.Fatalf("batch=%d slot %d diverged:\n batch: %+v\nserial: %+v", batch, i+1, got[i], want[i])
			}
		}
		if !reflect.DeepEqual(sess.Checkpoint(), wantCp) {
			t.Fatalf("batch=%d checkpoint diverged from serial", batch)
		}
	}
}

// A buffered (semi-online) algorithm decides lagged slots: a batch can
// unlock fewer advisories than it feeds, and the Close flush matches the
// serial session's.
func TestPushBatchBuffered(t *testing.T) {
	types := sharingFleet()
	trace := sharingTrace()
	const w = 3

	mk := func() *Session {
		alg, err := baseline.NewLookahead(types, w)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := New(alg, types, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	serial := mk()
	var want []Advisory
	for _, lambda := range trace {
		advs, err := serial.FeedDemand(lambda)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, advs...)
	}
	tail, err := serial.Close()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, tail...)

	sess := mk()
	const batch = 5
	advs := make([]Advisory, batch)
	var got []Advisory
	for start := 0; start < len(trace); start += batch {
		ins := []model.SlotInput{}
		for _, lambda := range trace[start:min(start+batch, len(trace))] {
			ins = append(ins, model.SlotInput{Lambda: lambda})
		}
		n, err := sess.PushBatch(ins, advs)
		if err != nil {
			t.Fatal(err)
		}
		if start == 0 && n != batch-(w-1) {
			t.Fatalf("first batch decided %d slots, want %d (lookahead lag)", n, batch-(w-1))
		}
		for i := 0; i < n; i++ {
			cp := advs[i]
			cp.Config = append(model.Config(nil), advs[i].Config...)
			got = append(got, cp)
		}
	}
	btail, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, btail...)

	if len(got) != len(want) {
		t.Fatalf("batched decided %d slots, serial %d", len(got), len(want))
	}
	for i := range want {
		if !advisoriesEqual(got[i], want[i]) {
			t.Fatalf("slot %d diverged:\n batch: %+v\nserial: %+v", i+1, got[i], want[i])
		}
	}
}

// A mid-batch error commits the prefix exactly like repeated pushes: the
// slots before the infeasible one are fed, their advisories are
// returned, and the session continues from the committed prefix.
func TestPushBatchPartialCommit(t *testing.T) {
	types := sharingFleet()
	sess, err := New(mustAlgB(t, types), types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins := []model.SlotInput{
		{Lambda: 3}, {Lambda: 4}, {Lambda: -1}, {Lambda: 5},
	}
	advs := make([]Advisory, len(ins))
	n, err := sess.PushBatch(ins, advs)
	if err == nil {
		t.Fatal("negative demand must fail the batch")
	}
	if n != 2 || sess.Fed() != 2 {
		t.Fatalf("decided %d, fed %d; want 2 committed slots before the error", n, sess.Fed())
	}
	if sess.Err() != nil {
		t.Fatalf("validation error must not be sticky: %v", sess.Err())
	}
	// The remainder of the batch was not fed; the session continues.
	if _, err := sess.FeedDemand(5); err != nil {
		t.Fatal(err)
	}
	if sess.Fed() != 3 {
		t.Fatalf("fed %d, want 3", sess.Fed())
	}

	// An undersized advisory buffer is rejected before any slot is fed.
	if _, err := sess.PushBatch(ins[:2], advs[:1]); err == nil || sess.Fed() != 3 {
		t.Fatalf("undersized buffer: err=%v fed=%d, want error and no commit", err, sess.Fed())
	}
}

func mustAlgB(t *testing.T, types []model.ServerType) core.Online {
	t.Helper()
	alg, err := core.NewAlgorithmB(types)
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

// The batch counterpart of TestSteadyStatePushZeroAllocs: once the
// session reaches steady state, PushBatch performs zero allocations for
// the whole batch.
func TestSteadyStatePushBatchZeroAllocs(t *testing.T) {
	types := sharingFleet()
	sess, err := New(mustAlgB(t, types), types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 16
	ins := make([]model.SlotInput, batch)
	for i := range ins {
		ins[i] = model.SlotInput{Lambda: 7.5}
	}
	advs := make([]Advisory, batch)
	push := func() {
		n, err := sess.PushBatch(ins, advs)
		if err != nil || n != batch {
			t.Fatalf("push batch: n=%d err=%v", n, err)
		}
	}
	// Reach steady state (cf. the single-push guard): grow the replay
	// log, histories and DP buffers, and populate the layer memo.
	for i := 0; i < 32; i++ {
		push()
	}
	if avg := testing.AllocsPerRun(50, push); avg != 0 {
		t.Errorf("steady-state Session.PushBatch allocates %v/op, want 0", avg)
	}
	if advs[batch-1].Slot != sess.Decided() || advs[batch-1].Opt <= 0 {
		t.Fatalf("advisories not maintained through steady state: %+v", advs[batch-1])
	}
}
