package stream

import (
	"testing"

	"repro/internal/core"
)

func TestReplayDeltaBitIdentical(t *testing.T) {
	demands := []float64{1, 3, 6, 2, 4, 5, 1, 2}
	cut := 5 // snapshot covers slots 1..cut; the WAL delta holds the rest

	serial := open(t, Options{})
	for _, l := range demands {
		if _, err := serial.FeedDemand(l); err != nil {
			t.Fatal(err)
		}
	}

	snap := open(t, Options{})
	for _, l := range demands[:cut] {
		if _, err := snap.FeedDemand(l); err != nil {
			t.Fatal(err)
		}
	}
	// The delta carries duplicates below the snapshot's fed count —
	// replay must skip them without feeding.
	delta := []DeltaRecord{{T: cut - 1, Lambda: 99}, {T: cut, Lambda: 99}}
	for i, l := range demands[cut:] {
		delta = append(delta, DeltaRecord{T: cut + i + 1, Lambda: l})
	}
	applied, err := snap.ReplayDelta(delta)
	if err != nil {
		t.Fatalf("ReplayDelta: %v", err)
	}
	if applied != len(demands)-cut {
		t.Fatalf("applied %d, want %d", applied, len(demands)-cut)
	}
	if snap.Fed() != serial.Fed() || snap.CumCost() != serial.CumCost() {
		t.Fatalf("replayed session fed=%d cum=%v, serial fed=%d cum=%v",
			snap.Fed(), snap.CumCost(), serial.Fed(), serial.CumCost())
	}
	// Continuation after replay stays bit-identical.
	a1, err1 := serial.FeedDemand(3)
	a2, err2 := snap.FeedDemand(3)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(a1) != 1 || len(a2) != 1 || a1[0].CumCost != a2[0].CumCost || a1[0].Opt != a2[0].Opt {
		t.Fatalf("post-replay advisory diverged: %+v vs %+v", a1, a2)
	}
}

func TestReplayDeltaSkipsRejectedOrphans(t *testing.T) {
	s := open(t, Options{})
	if _, err := s.FeedDemand(2); err != nil {
		t.Fatal(err)
	}
	// Record 2 is an orphan: its original push was logged, then failed
	// validation (negative demand) without stepping the algorithm, so
	// the next logged record reuses index 2.
	delta := []DeltaRecord{
		{T: 2, Lambda: -5},
		{T: 2, Lambda: 4},
		{T: 3, Lambda: 1},
	}
	applied, err := s.ReplayDelta(delta)
	if err != nil {
		t.Fatalf("ReplayDelta: %v", err)
	}
	if applied != 2 || s.Fed() != 3 {
		t.Fatalf("applied=%d fed=%d, want 2 and 3", applied, s.Fed())
	}
}

func TestReplayDeltaStopsOnGap(t *testing.T) {
	s := open(t, Options{})
	if _, err := s.FeedDemand(2); err != nil {
		t.Fatal(err)
	}
	applied, err := s.ReplayDelta([]DeltaRecord{{T: 2, Lambda: 1}, {T: 5, Lambda: 1}})
	if err == nil {
		t.Fatal("a replay gap must be reported")
	}
	if applied != 1 || s.Fed() != 2 {
		t.Fatalf("applied=%d fed=%d after gap, want 1 and 2", applied, s.Fed())
	}
}

func TestReplayDeltaStopsOnStickyFailure(t *testing.T) {
	// Algorithm C panics past its subdivision cap; a session that
	// replays into that state must stop and report, not spin.
	alg, err := core.NewAlgorithmC(fleet(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(alg, fleet(), Options{DisableOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	var delta []DeltaRecord
	for i := 0; i < 64; i++ {
		delta = append(delta, DeltaRecord{T: i + 1, Lambda: float64(1 + i%5)})
	}
	applied, err := s.ReplayDelta(delta)
	if err == nil {
		// The cap may not trip within 64 slots for this fleet; only
		// assert the session stayed consistent in that case.
		if applied != len(delta) {
			t.Fatalf("no error but only %d of %d applied", applied, len(delta))
		}
		return
	}
	if s.Err() == nil {
		t.Fatal("replay error without sticky session failure")
	}
	if applied >= len(delta) {
		t.Fatal("sticky failure but everything applied")
	}
}
