package stream

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
)

func sharingFleet() []model.ServerType {
	return []model.ServerType{
		{Name: "cpu", Count: 8, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Static{F: costfn.Power{Idle: 1, Coef: 0.6, Exp: 2}}},
		{Name: "gpu", Count: 3, SwitchCost: 12, MaxLoad: 4,
			Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.3}}},
	}
}

func sharingTrace() []float64 {
	out := make([]float64, 40)
	for i := range out {
		out[i] = 4 + 6*math.Sin(float64(i)/5) + 3*math.Cos(float64(i)/3)
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// hideOptTracking wraps an algorithm so only the plain Online interface
// shows, forcing the session onto its dedicated telemetry tracker.
type hideOptTracking struct{ core.Online }

// Telemetry sharing is pure plumbing: a session reusing the algorithm's
// prefix tracker must emit advisories bit-identical — including Opt and
// Ratio — to a session that runs its own tracker over the same stream.
func TestSharedTelemetryMatchesDedicatedTracker(t *testing.T) {
	types := sharingFleet()
	mk := func(hide bool) *Session {
		alg, err := core.NewAlgorithmB(types)
		if err != nil {
			t.Fatal(err)
		}
		var online core.Online = alg
		if hide {
			online = hideOptTracking{alg}
		}
		sess, err := New(online, types, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	shared, dedicated := mk(false), mk(true)
	if !shared.SharesOptTracker() {
		t.Fatal("Algorithm B session should share the algorithm's tracker")
	}
	if dedicated.SharesOptTracker() {
		t.Fatal("wrapped session must fall back to its own tracker")
	}
	for i, lambda := range sharingTrace() {
		a, err := shared.FeedDemand(lambda)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dedicated.FeedDemand(lambda)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != 1 || len(b) != 1 {
			t.Fatalf("slot %d: expected one advisory each, got %d/%d", i+1, len(a), len(b))
		}
		av, bv := a[0], b[0]
		if !av.Config.Equal(bv.Config) ||
			math.Float64bits(av.Opt) != math.Float64bits(bv.Opt) ||
			math.Float64bits(av.Ratio) != math.Float64bits(bv.Ratio) ||
			math.Float64bits(av.CumCost) != math.Float64bits(bv.CumCost) {
			t.Fatalf("slot %d: shared advisory %+v != dedicated %+v", i+1, av, bv)
		}
	}
}

// Approximate (reduced-lattice) trackers must not serve telemetry: their
// prefix costs are only (2γ−1)-approximate.
func TestInexactTrackerNotShared(t *testing.T) {
	types := sharingFleet()
	alg, err := core.NewAlgorithmBWithOptions(types, core.Options{TrackerGamma: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(alg, types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.SharesOptTracker() {
		t.Fatal("reduced-lattice tracker must not be reused for telemetry")
	}
	if _, err := sess.FeedDemand(3); err != nil {
		t.Fatal(err)
	}
}

// DisableOpt suppresses telemetry even for sharing-capable algorithms.
func TestDisableOptSuppressesSharing(t *testing.T) {
	types := sharingFleet()
	alg, err := core.NewAlgorithmB(types)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(alg, types, Options{DisableOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if sess.SharesOptTracker() {
		t.Fatal("DisableOpt must suppress sharing")
	}
	advs, err := sess.FeedDemand(3)
	if err != nil {
		t.Fatal(err)
	}
	if advs[0].Opt != 0 || advs[0].Ratio != 0 {
		t.Fatalf("telemetry fields should be zero with DisableOpt, got %+v", advs[0])
	}
}

// The headline allocation guard of the perf issue: once a session over a
// static fleet reaches steady state, Push performs zero allocations —
// validation, accumulation, the algorithm's DP step (memo-served), cost
// accounting and telemetry included.
func TestSteadyStatePushZeroAllocs(t *testing.T) {
	types := sharingFleet()
	alg, err := core.NewAlgorithmB(types)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(alg, types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var adv Advisory
	push := func() {
		decided, err := sess.Push(model.SlotInput{Lambda: 7.5}, &adv)
		if err != nil || !decided {
			t.Fatalf("push: decided=%v err=%v", decided, err)
		}
	}
	// Reach steady state: grow the replay log, histories and DP buffers,
	// and populate the operating-cost layer memo.
	for i := 0; i < 512; i++ {
		push()
	}
	if avg := testing.AllocsPerRun(100, push); avg != 0 {
		t.Errorf("steady-state Session.Push allocates %v/op, want 0", avg)
	}
	if adv.Slot != sess.Decided() || adv.Opt <= 0 {
		t.Fatalf("advisory not maintained through steady state: %+v", adv)
	}
}
