// Package stream manages live advisory sessions: a Session wraps any
// push-based online algorithm (core.Online), validates and feeds it slot
// data as it arrives, and reports per-slot advisories — the configuration
// to run plus running cost and competitive-ratio telemetry against the
// streaming prefix optimum. Batch replay (core.Run) and live serving share
// the same algorithm code path, so a session's summed advisory cost equals
// the batch schedule cost bit-for-bit.
//
// Sessions are checkpointable: the fed inputs form a deterministic replay
// log, so Checkpoint captures everything needed to rebuild an identical
// session (event-sourcing style) and Resume replays it into a fresh
// algorithm instance. Deterministic algorithms — all of the library's —
// continue bit-identically after a resume.
//
// State (the replay log, the accumulated instance, algorithm histories)
// grows linearly with stream length, and resume time is proportional to
// the checkpointed prefix — the standard event-sourcing trade-off. For
// the paper-scale horizons served here that is cheap; unbounded streams
// would want periodic log compaction onto a state snapshot, a deliberate
// non-goal of this layer for now.
package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/numeric"
	"repro/internal/solver"
)

// Options tunes a session. The zero value enables full telemetry.
type Options struct {
	// DisableOpt turns off the session's Opt/Ratio telemetry entirely:
	// neither a dedicated prefix-optimum tracker nor the algorithm's own
	// (see core.OptTracking) is consulted.
	DisableOpt bool
	// Workers parallelises the session's fallback telemetry tracker
	// (solver.Options.Workers semantics; only relevant for algorithms
	// without a reusable tracker of their own).
	Workers int
	// Alg overrides the algorithm identifier recorded in checkpoints
	// (defaults to the algorithm's display name). Registry-based openers
	// set it to the registry key so Resume can re-resolve the algorithm.
	Alg string
}

// Advisory is one slot's decision plus telemetry. Fields with omitempty
// are absent when the session's optimum tracker is disabled.
type Advisory struct {
	// Slot is the 1-based slot the advisory decides.
	Slot int `json:"slot"`
	// Lambda echoes the slot's demand.
	Lambda float64 `json:"lambda"`
	// Config is the configuration to run during the slot (one count per
	// server type). It is a fresh copy owned by the caller.
	Config model.Config `json:"config"`
	// Active is the total number of active servers.
	Active int `json:"active"`
	// Operating and Switching are the slot's cost components; CumCost is
	// the compensated running total over all decided slots.
	Operating float64 `json:"operating"`
	Switching float64 `json:"switching"`
	CumCost   float64 `json:"cum_cost"`
	// Opt is the optimal cost of serving the decided prefix in hindsight;
	// Ratio is CumCost/Opt, the running competitive ratio.
	Opt   float64 `json:"opt,omitempty"`
	Ratio float64 `json:"ratio,omitempty"`
	// Pending counts slots ingested but not yet decided (only semi-online
	// algorithms with lookahead lag; 0 for fully online algorithms).
	Pending int `json:"pending,omitempty"`
}

// SlotRecord is one entry of a session's replay log: the raw fed input.
// Explicit per-slot cost functions are retained in memory for in-process
// resume but are not JSON-portable; demand/counts streams (the CLI case,
// costs resolved from the fleet template) round-trip losslessly.
type SlotRecord struct {
	Lambda float64       `json:"lambda"`
	Counts []int         `json:"counts,omitempty"`
	Costs  []costfn.Func `json:"-"`
}

// Checkpoint captures a session's full input history. Replaying it into a
// fresh session (Resume) reproduces the algorithm state bit-identically.
type Checkpoint struct {
	// Alg names the algorithm; Resume callers use it to construct the
	// right core.Online. Registry-based resume (engine.ResumeSession) is
	// only guaranteed to reconstruct the original algorithm for sessions
	// opened through the registry (engine.OpenSession records the registry
	// key here). Sessions around hand-constructed algorithms — custom
	// parameters, non-stock tracker options — must resume in-process via
	// stream.Resume with an identically-constructed algorithm, or set
	// Options.Alg to a key they have registered.
	Alg string `json:"alg,omitempty"`
	// Slots is the replay log, in feed order.
	Slots []SlotRecord `json:"slots"`
}

// Portable reports whether the checkpoint survives JSON serialisation
// losslessly: true when no slot carried explicit cost functions.
func (cp *Checkpoint) Portable() bool {
	for _, r := range cp.Slots {
		if r.Costs != nil {
			return false
		}
	}
	return true
}

// Session drives one algorithm over a live slot stream.
type Session struct {
	alg    core.Online
	name   string
	tag    string // checkpoint identifier (registry key or display name)
	fleet  []model.ServerType
	acc    *model.Accumulator // validated, resolved input history
	eval   *model.SlotEval
	opt    *solver.PrefixTracker // fallback streaming prefix optimum (telemetry)
	shared core.OptTracking      // the algorithm's own exact tracker, when it has one

	fed     int   // slots ingested
	decided int   // slots decided
	failed  error // sticky algorithm failure; the session refuses further feeds
	prev    model.Config
	opSum   numeric.Kahan
	swSum   float64
	optCost float64
	log     []SlotRecord
	scratch model.SlotInput // slot being fed (filled by Feed)
	lagged  model.SlotInput // older slot re-materialised for lagged decisions
}

// New opens a session for a constructed (never stepped) algorithm over the
// fleet template.
func New(alg core.Online, types []model.ServerType, opts Options) (*Session, error) {
	if alg == nil {
		return nil, fmt.Errorf("stream: nil algorithm")
	}
	acc, err := model.NewAccumulator(types)
	if err != nil {
		return nil, err
	}
	tag := opts.Alg
	if tag == "" {
		tag = alg.Name()
	}
	s := &Session{
		alg:   alg,
		name:  alg.Name(),
		tag:   tag,
		fleet: append([]model.ServerType(nil), types...),
		acc:   acc,
		eval:  model.NewSlotEval(types),
		prev:  make(model.Config, len(types)),
	}
	if !opts.DisableOpt {
		// Algorithms that already run an exact prefix-optimum tracker
		// (core.OptTracking) hand it to the session, which then skips its
		// own — halving steady-state per-slot DP work. Buffered algorithms
		// are excluded: their tracker runs at feed time while telemetry is
		// accounted at (lagged) decision time.
		if ot, ok := alg.(core.OptTracking); ok {
			if _, buffered := alg.(core.Buffered); !buffered {
				if _, exact := ot.PrefixOptCost(); exact {
					s.shared = ot
				}
			}
		}
		if s.shared == nil {
			s.opt, err = solver.NewStreamTracker(types, solver.Options{Workers: opts.Workers})
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// SharesOptTracker reports whether Opt/Ratio telemetry is served by the
// algorithm's own prefix tracker rather than a session-owned one.
func (s *Session) SharesOptTracker() bool { return s.shared != nil }

// Name returns the wrapped algorithm's display name.
func (s *Session) Name() string { return s.name }

// Err returns the session's sticky failure, if any: once the algorithm
// rejects a slot the session refuses further feeds and reports why here.
func (s *Session) Err() error { return s.failed }

// Fed returns the number of slots ingested so far.
func (s *Session) Fed() int { return s.fed }

// Decided returns the number of slots with an emitted advisory.
func (s *Session) Decided() int { return s.decided }

// CumCost returns the compensated running advisory cost over the decided
// prefix. After Close it equals the batch schedule cost bit-for-bit.
func (s *Session) CumCost() float64 { return s.opSum.Sum() + s.swSum }

// Push ingests one slot and, when it unlocks a decision, writes the
// advisory into *adv, reusing adv's buffers — the allocation-free core of
// Feed: steady-state pushes on a static fleet perform zero allocations.
// decided is false while a semi-online algorithm's lookahead window fills.
// Inputs are validated before the algorithm sees them; an error leaves the
// session unchanged. Should the algorithm still reject a slot (panic —
// e.g. Algorithm C's subdivision cap), the panic is converted to an error
// and the session refuses further feeds: a live advisory server degrades
// to an error response instead of crashing.
func (s *Session) Push(in model.SlotInput, adv *Advisory) (decided bool, err error) {
	if s.failed != nil {
		return false, s.failed
	}
	if in.T != 0 && in.T != s.fed+1 {
		return false, fmt.Errorf("stream: fed slot %d out of order, want %d", in.T, s.fed+1)
	}
	defer func() {
		if r := recover(); r != nil {
			s.failed = fmt.Errorf("stream: %s failed on slot %d: %v", s.name, s.fed, r)
			decided, err = false, s.failed
		}
	}()
	rec := SlotRecord{Lambda: in.Lambda}
	if in.Counts != nil {
		rec.Counts = append([]int(nil), in.Counts...)
	}
	if in.Costs != nil {
		rec.Costs = append([]costfn.Func(nil), in.Costs...)
	}
	if err := s.acc.Push(in); err != nil {
		return false, err
	}
	s.fed++

	// Hand the algorithm the fully-resolved slot view. The replay log is
	// appended only after Step succeeds, so a checkpoint taken from a
	// failed session still replays cleanly up to the last good slot.
	s.acc.Instance().SlotInto(s.fed, &s.scratch)
	x := s.alg.Step(s.scratch)
	s.log = append(s.log, rec)
	if x == nil {
		return false, nil
	}
	s.record(x, adv)
	return true, nil
}

// PushBatch feeds the slots of ins in order, writing the advisories the
// batch unlocks into the leading elements of advs (reusing their
// buffers, like Push) and returning how many were decided. advs must
// hold at least len(ins) elements — each slot unlocks at most one
// advisory. Per-slot semantics are exactly those of repeated Push calls:
// slots are committed one at a time, so on error the slots before the
// failing one remain fed (and their advisories are in advs[:decided])
// while the failing slot and everything after it are not. Steady-state
// batches on a static fleet perform zero allocations.
func (s *Session) PushBatch(ins []model.SlotInput, advs []Advisory) (decided int, err error) {
	if len(advs) < len(ins) {
		return 0, fmt.Errorf("stream: advisory buffer holds %d slots, batch has %d", len(advs), len(ins))
	}
	for i := range ins {
		d, err := s.Push(ins[i], &advs[decided])
		if err != nil {
			return decided, err
		}
		if d {
			decided++
		}
	}
	return decided, nil
}

// Feed is Push with an allocated result: it returns the advisories the
// slot unlocks — exactly one for fully online algorithms, none while a
// semi-online algorithm's lookahead window fills.
func (s *Session) Feed(in model.SlotInput) ([]Advisory, error) {
	var adv Advisory
	decided, err := s.Push(in, &adv)
	if err != nil || !decided {
		return nil, err
	}
	return []Advisory{adv}, nil
}

// FeedDemand is Feed for the common demand-only stream: costs and counts
// come from the fleet template.
func (s *Session) FeedDemand(lambda float64) ([]Advisory, error) {
	return s.Feed(model.SlotInput{Lambda: lambda})
}

// Close ends the stream: semi-online algorithms decide their buffered
// slots (shrinking windows toward the horizon), fully online algorithms
// return nothing. The session stays readable but must not be fed again.
func (s *Session) Close() ([]Advisory, error) {
	b, ok := s.alg.(core.Buffered)
	if !ok {
		return nil, nil
	}
	var out []Advisory
	for _, x := range b.Flush() {
		if s.decided >= s.fed {
			return out, fmt.Errorf("stream: %s flushed more decisions than fed slots", s.name)
		}
		var adv Advisory
		s.record(x, &adv)
		out = append(out, adv)
	}
	return out, nil
}

// record accounts one decided slot and fills its advisory in place
// (reusing adv's Config buffer). When the decision is for the slot Push
// just resolved into s.scratch (every slot, for fully online algorithms)
// the scratch view is reused; lagged Buffered decisions re-materialise the
// older slot into a separate buffer (s.lagged) so s.scratch's backing
// arrays stay untouched — Close() mixes lagged and current-slot records
// back to back.
func (s *Session) record(x model.Config, adv *Advisory) {
	s.decided++
	t := s.decided
	in := s.scratch
	if t != s.fed {
		s.acc.Instance().SlotInto(t, &s.lagged)
		in = s.lagged
	}

	op := s.eval.G(in, x)
	sw := model.SwitchCostOf(s.fleet, s.prev, x)
	s.opSum.Add(op)
	s.swSum += sw
	s.prev = append(s.prev[:0], x...)

	*adv = Advisory{
		Slot:      t,
		Lambda:    in.Lambda,
		Config:    append(adv.Config[:0], x...),
		Active:    x.Total(),
		Operating: op,
		Switching: sw,
		CumCost:   s.CumCost(),
		Pending:   s.fed - s.decided,
	}
	switch {
	case s.shared != nil:
		// The algorithm's own tracker consumed this slot during Step; its
		// prefix cost is bit-identical to what a dedicated session tracker
		// fed the same inputs would produce.
		s.optCost, _ = s.shared.PrefixOptCost()
	case s.opt != nil:
		_, optCost, err := s.opt.Push(in)
		if err != nil {
			// The accumulator accepted the slot, so the tracker must too.
			panic("stream: telemetry tracker rejected a validated slot: " + err.Error())
		}
		s.optCost = optCost
	default:
		return
	}
	adv.Opt = s.optCost
	if s.optCost > 0 {
		adv.Ratio = adv.CumCost / s.optCost
	}
}

// Checkpoint snapshots the session's replay log. The returned value is
// independent of the session's future mutations.
func (s *Session) Checkpoint() *Checkpoint {
	cp := &Checkpoint{Alg: s.tag, Slots: make([]SlotRecord, len(s.log))}
	copy(cp.Slots, s.log)
	return cp
}

// DeltaRecord is one entry of an external replay log (internal/wal): a
// slot input with the absolute 1-based index it was assigned when first
// fed. Unlike SlotRecord, the index travels with the record so replay
// can skip entries a snapshot already covers.
type DeltaRecord struct {
	T      int
	Lambda float64
	Counts []int
}

// ReplayDelta is the crash-recovery seam: it feeds a write-ahead log's
// delta records into a session resumed from the newest snapshot,
// tolerating exactly the artifacts a WAL accumulates in normal
// operation. Records at or below the session's fed count are skipped
// (duplicates from a crash between snapshot save and log compaction, or
// from a client retry after a failed fsync); records the session's
// validation rejects are skipped too (orphans whose original push was
// logged but then failed the algorithm step — replay fails them
// deterministically again). A record past the next expected slot means
// the log lost its middle, and a sticky algorithm failure means the
// session cannot advance: both stop the replay, returning what was
// applied. The replayed advisories are discarded — they were emitted
// before the crash.
func (s *Session) ReplayDelta(recs []DeltaRecord) (applied int, err error) {
	for _, rec := range recs {
		if rec.T <= s.fed {
			continue
		}
		if rec.T != s.fed+1 {
			return applied, fmt.Errorf("stream: replay gap: record %d after slot %d", rec.T, s.fed)
		}
		in := model.SlotInput{T: rec.T, Lambda: rec.Lambda, Counts: rec.Counts}
		if _, err := s.Feed(in); err != nil {
			if s.failed != nil {
				return applied, err
			}
			continue
		}
		applied++
	}
	return applied, nil
}

// Resume rebuilds a session from a checkpoint by replaying its log into a
// freshly constructed (never stepped) algorithm. The replayed advisories
// are discarded — they were already emitted by the original session — and
// the returned session continues exactly where the checkpoint was taken.
func Resume(alg core.Online, types []model.ServerType, opts Options, cp *Checkpoint) (*Session, error) {
	s, err := New(alg, types, opts)
	if err != nil {
		return nil, err
	}
	for i, rec := range cp.Slots {
		in := model.SlotInput{T: i + 1, Lambda: rec.Lambda, Costs: rec.Costs, Counts: rec.Counts}
		if _, err := s.Feed(in); err != nil {
			return nil, fmt.Errorf("stream: replaying slot %d: %w", i+1, err)
		}
	}
	return s, nil
}
