package stream

import (
	"encoding/json"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/model"
	"repro/internal/solver"
)

func fleet() []model.ServerType {
	return []model.ServerType{
		{Name: "slow", Count: 4, SwitchCost: 2, MaxLoad: 1,
			Cost: model.Static{F: costfn.Affine{Idle: 1, Rate: 1}}},
		{Name: "fast", Count: 2, SwitchCost: 8, MaxLoad: 4,
			Cost: model.Static{F: costfn.Affine{Idle: 3, Rate: 0.5}}},
	}
}

func open(t *testing.T, opts Options) *Session {
	t.Helper()
	alg, err := core.NewAlgorithmA(fleet())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(alg, fleet(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionAdvisoryTelemetry(t *testing.T) {
	s := open(t, Options{})
	demands := []float64{1, 3, 6, 2}
	var last Advisory
	for i, l := range demands {
		advs, err := s.FeedDemand(l)
		if err != nil {
			t.Fatalf("slot %d: %v", i+1, err)
		}
		if len(advs) != 1 {
			t.Fatalf("slot %d: %d advisories, want 1 (fully online)", i+1, len(advs))
		}
		adv := advs[0]
		if adv.Slot != i+1 || adv.Lambda != l {
			t.Fatalf("advisory %+v echoes wrong slot data", adv)
		}
		if adv.Pending != 0 {
			t.Errorf("fully online algorithm reports %d pending slots", adv.Pending)
		}
		if adv.Opt <= 0 || adv.Ratio < 1-1e-9 {
			t.Errorf("slot %d: opt %g ratio %g; expected positive opt and ratio >= 1", i+1, adv.Opt, adv.Ratio)
		}
		if adv.CumCost < last.CumCost {
			t.Error("running cost decreased")
		}
		last = adv
	}
	if s.Fed() != len(demands) || s.Decided() != len(demands) {
		t.Errorf("fed %d decided %d, want %d", s.Fed(), s.Decided(), len(demands))
	}

	// The session's running cost equals the batch cost of the same trace.
	ins := &model.Instance{Types: fleet(), Lambda: demands}
	alg, _ := core.NewAlgorithmA(fleet())
	sched := core.Run(alg, ins)
	batch := model.NewEvaluator(ins).Cost(sched).Total()
	if got := s.CumCost(); got != batch {
		t.Errorf("session cum cost %v != batch %v", got, batch)
	}
	// And the reported optimum is the true prefix optimum.
	opt, err := solver.OptimalCost(ins)
	if err != nil {
		t.Fatal(err)
	}
	if last.Opt != opt {
		t.Errorf("final advisory opt %v != OPT %v", last.Opt, opt)
	}
}

func TestSessionValidatesBeforeStepping(t *testing.T) {
	s := open(t, Options{})
	if _, err := s.FeedDemand(-1); err == nil {
		t.Error("negative demand must be rejected")
	}
	if _, err := s.FeedDemand(1e9); err == nil {
		t.Error("demand above capacity must be rejected")
	}
	if _, err := s.Feed(model.SlotInput{T: 5, Lambda: 1}); err == nil {
		t.Error("out-of-order slot must be rejected")
	}
	// The rejected inputs must not have reached the algorithm.
	if s.Fed() != 0 {
		t.Errorf("fed = %d after rejected inputs, want 0", s.Fed())
	}
	if _, err := s.FeedDemand(2); err != nil {
		t.Fatalf("valid feed after rejections: %v", err)
	}
}

func TestSessionDisableOpt(t *testing.T) {
	s := open(t, Options{DisableOpt: true})
	advs, err := s.FeedDemand(2)
	if err != nil {
		t.Fatal(err)
	}
	if advs[0].Opt != 0 || advs[0].Ratio != 0 {
		t.Errorf("telemetry disabled but advisory has opt %g ratio %g", advs[0].Opt, advs[0].Ratio)
	}
}

func TestSessionLookaheadPendingAndClose(t *testing.T) {
	alg, err := baseline.NewLookahead(fleet(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(alg, fleet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	demands := []float64{1, 2, 3, 4, 5}
	decided := 0
	for i, l := range demands {
		advs, err := s.FeedDemand(l)
		if err != nil {
			t.Fatal(err)
		}
		decided += len(advs)
		if i < 2 && decided != 0 {
			t.Fatalf("slot %d decided early (window not full)", i+1)
		}
	}
	if decided != 3 {
		t.Fatalf("decided %d of %d before close, want 3 (lag w-1)", decided, len(demands))
	}
	advs, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 2 {
		t.Fatalf("close flushed %d advisories, want 2", len(advs))
	}
	if advs[len(advs)-1].Slot != len(demands) {
		t.Errorf("last advisory slot %d, want %d", advs[len(advs)-1].Slot, len(demands))
	}
}

// Regression: Close() mixes lagged and current-slot records back to back;
// the lagged slot must be re-materialised into its own buffer, not into
// the shared scratch, or the final advisory is costed with the previous
// slot's cost functions. Caught by review with a time-varying last slot.
func TestLookaheadCloseWithTimeVaryingCosts(t *testing.T) {
	scale := []float64{1, 1, 1, 3, 4} // last two slots differ
	types := []model.ServerType{{
		Name: "srv", Count: 4, SwitchCost: 2, MaxLoad: 1,
		Cost: model.Modulated{F: costfn.Affine{Idle: 1, Rate: 1}, Scale: scale},
	}}
	demands := []float64{1, 2, 3, 2, 1}

	alg, err := baseline.NewLookahead(types, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(alg, types, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sched model.Schedule
	for _, l := range demands {
		advs, err := s.FeedDemand(l)
		if err != nil {
			t.Fatal(err)
		}
		for _, adv := range advs {
			sched = append(sched, adv.Config)
		}
	}
	advs, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, adv := range advs {
		sched = append(sched, adv.Config)
	}

	ins := &model.Instance{Types: types, Lambda: demands}
	alg2, _ := baseline.NewLookahead(types, 2)
	batch := core.Run(alg2, ins)
	if len(sched) != len(batch) {
		t.Fatalf("decided %d slots, batch %d", len(sched), len(batch))
	}
	for i := range batch {
		if !batch[i].Equal(sched[i]) {
			t.Fatalf("slot %d: stream %v != batch %v", i+1, sched[i], batch[i])
		}
	}
	if got, want := s.CumCost(), model.NewEvaluator(ins).Cost(batch).Total(); got != want {
		t.Errorf("session cum cost %v != batch %v (lagged record costed with the wrong slot?)", got, want)
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	s := open(t, Options{})
	demands := []float64{1, 4, 2, 6, 3, 5}
	for _, l := range demands[:3] {
		if _, err := s.FeedDemand(l); err != nil {
			t.Fatal(err)
		}
	}
	cp := s.Checkpoint()
	if !cp.Portable() {
		t.Error("demand-only log should be portable")
	}
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var cp2 Checkpoint
	if err := json.Unmarshal(data, &cp2); err != nil {
		t.Fatal(err)
	}
	alg2, _ := core.NewAlgorithmA(fleet())
	r, err := Resume(alg2, fleet(), Options{}, &cp2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fed() != 3 || r.CumCost() != s.CumCost() {
		t.Fatalf("resumed state (fed %d, cost %v) != original (fed %d, cost %v)",
			r.Fed(), r.CumCost(), s.Fed(), s.CumCost())
	}
	// Both sessions must continue identically.
	for _, l := range demands[3:] {
		a1, err1 := s.FeedDemand(l)
		a2, err2 := r.FeedDemand(l)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !a1[0].Config.Equal(a2[0].Config) || a1[0].CumCost != a2[0].CumCost {
			t.Fatalf("slot %d diverged after resume: %+v vs %+v", a1[0].Slot, a1[0], a2[0])
		}
	}
}

func TestCheckpointWithExplicitCostsNotPortable(t *testing.T) {
	alg, _ := core.NewAlgorithmB(fleet())
	s, err := New(alg, fleet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	costs := []costfn.Func{costfn.Constant{C: 2}, costfn.Constant{C: 5}}
	if _, err := s.Feed(model.SlotInput{Lambda: 1, Costs: costs}); err != nil {
		t.Fatal(err)
	}
	cp := s.Checkpoint()
	if cp.Portable() {
		t.Error("explicit cost functions cannot round-trip JSON")
	}
	// In-process resume still works with full fidelity.
	alg2, _ := core.NewAlgorithmB(fleet())
	r, err := Resume(alg2, fleet(), Options{}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fed() != 1 || r.CumCost() != s.CumCost() {
		t.Error("in-memory resume should replay explicit costs")
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := New(nil, fleet(), Options{}); err == nil {
		t.Error("nil algorithm must be rejected")
	}
	alg, _ := core.NewAlgorithmA(fleet())
	if _, err := New(alg, nil, Options{}); err == nil {
		t.Error("empty fleet must be rejected")
	}
}
