// Package trace imports, exports and reshapes workload traces. Production
// demand data arrives as CSV time series at arbitrary granularity; the
// right-sizing model needs one non-negative volume per scheduling slot.
// This package bridges the two: CSV parsing, resampling between slot
// lengths (peak-preserving or averaging), normalisation to a capacity
// budget, and smoothing.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FromCSV reads one numeric column (0-based) from CSV data. Blank lines
// are skipped; a non-numeric first row is treated as a header. Values
// must be non-negative.
func FromCSV(r io.Reader, col int) ([]float64, error) {
	if col < 0 {
		return nil, fmt.Errorf("trace: negative column index %d", col)
	}
	var out []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if col >= len(fields) {
			return nil, fmt.Errorf("trace: line %d has %d columns, need %d", line, len(fields), col+1)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[col]), 64)
		if err != nil {
			if line == 1 && len(out) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("trace: line %d: negative volume %g", line, v)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: no data rows")
	}
	return out, nil
}

// ToCSV writes a trace as a single-column CSV with a header.
func ToCSV(w io.Writer, xs []float64) error {
	if _, err := fmt.Fprintln(w, "volume"); err != nil {
		return err
	}
	for _, x := range xs {
		if _, err := fmt.Fprintf(w, "%g\n", x); err != nil {
			return err
		}
	}
	return nil
}

// Agg selects how Resample combines fine-grained samples into one slot.
type Agg int

const (
	// AggMax keeps the peak — the safe choice for capacity planning,
	// because a slot's servers must cover its worst sample.
	AggMax Agg = iota
	// AggMean averages — appropriate when intra-slot queueing smooths
	// demand.
	AggMean
)

// Resample coarsens a trace by the given factor: every `factor`
// consecutive samples become one slot, combined per agg. A final partial
// window is aggregated over its actual length.
func Resample(xs []float64, factor int, agg Agg) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("trace: resample factor must be >= 1, got %d", factor)
	}
	if factor == 1 {
		return append([]float64(nil), xs...), nil
	}
	var out []float64
	for i := 0; i < len(xs); i += factor {
		end := i + factor
		if end > len(xs) {
			end = len(xs)
		}
		switch agg {
		case AggMax:
			m := xs[i]
			for _, v := range xs[i+1 : end] {
				if v > m {
					m = v
				}
			}
			out = append(out, m)
		case AggMean:
			s := 0.0
			for _, v := range xs[i:end] {
				s += v
			}
			out = append(out, s/float64(end-i))
		default:
			return nil, fmt.Errorf("trace: unknown aggregation %d", agg)
		}
	}
	return out, nil
}

// Normalize rescales a trace so its peak equals peak (> 0). A zero trace
// is returned unchanged.
func Normalize(xs []float64, peak float64) ([]float64, error) {
	if peak <= 0 {
		return nil, fmt.Errorf("trace: peak must be positive, got %g", peak)
	}
	max := 0.0
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(xs))
	if max == 0 {
		return out, nil
	}
	for i, v := range xs {
		out[i] = v / max * peak
	}
	return out, nil
}

// Smooth applies a centred moving average of the given window (odd,
// >= 1), clamping at the edges. Smoothing models the effect of a
// load-balancer buffer that absorbs sub-slot spikes.
func Smooth(xs []float64, window int) ([]float64, error) {
	if window < 1 || window%2 == 0 {
		return nil, fmt.Errorf("trace: window must be odd and >= 1, got %d", window)
	}
	if window == 1 {
		return append([]float64(nil), xs...), nil
	}
	half := window / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		s := 0.0
		for _, v := range xs[lo : hi+1] {
			s += v
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out, nil
}
