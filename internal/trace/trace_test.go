package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFromCSVBasic(t *testing.T) {
	in := "volume\n1.5\n2\n0\n3.25\n"
	got, err := FromCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 0, 3.25}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFromCSVColumnSelection(t *testing.T) {
	in := "ts,load,region\n0,5,eu\n1,7,eu\n"
	got, err := FromCSV(strings.NewReader(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestFromCSVSkipsBlankLines(t *testing.T) {
	in := "1\n\n2\n\n"
	got, err := FromCSV(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestFromCSVErrors(t *testing.T) {
	cases := map[string]struct {
		in  string
		col int
	}{
		"negative column": {"1\n", -1},
		"missing column":  {"1\n", 2},
		"bad number":      {"1\nx\n", 0},
		"negative value":  {"-1\n", 0},
		"empty":           {"", 0},
		"header only":     {"volume\n", 0},
	}
	for name, c := range cases {
		if _, err := FromCSV(strings.NewReader(c.in), c.col); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestToCSVRoundTrip(t *testing.T) {
	xs := []float64{1, 2.5, 0, 9.75}
	var b strings.Builder
	if err := ToCSV(&b, xs); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV(strings.NewReader(b.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if back[i] != xs[i] {
			t.Fatalf("round trip: %v vs %v", back, xs)
		}
	}
}

func TestResampleMax(t *testing.T) {
	xs := []float64{1, 5, 2, 3, 9, 0, 4}
	got, err := Resample(xs, 3, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 9, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestResampleMean(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	got, err := Resample(xs, 2, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestResamplePartialWindow(t *testing.T) {
	got, err := Resample([]float64{2, 4, 10}, 2, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 10 {
		t.Fatalf("partial window should average its own length: %v", got)
	}
}

func TestResampleIdentityAndErrors(t *testing.T) {
	xs := []float64{1, 2}
	got, err := Resample(xs, 1, AggMax)
	if err != nil || len(got) != 2 {
		t.Fatal("identity resample failed")
	}
	got[0] = 99
	if xs[0] == 99 {
		t.Error("identity resample must copy")
	}
	if _, err := Resample(xs, 0, AggMax); err == nil {
		t.Error("factor 0 should error")
	}
	if _, err := Resample(xs, 2, Agg(9)); err == nil {
		t.Error("unknown agg should error")
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{1, 2, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 10 || got[0] != 2.5 {
		t.Fatalf("got %v", got)
	}
	zero, err := Normalize([]float64{0, 0}, 5)
	if err != nil || zero[0] != 0 {
		t.Fatal("zero trace should stay zero")
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("peak 0 should error")
	}
}

func TestSmooth(t *testing.T) {
	got, err := Smooth([]float64{0, 9, 0, 9, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[1]-3) > 1e-12 || math.Abs(got[2]-6) > 1e-12 {
		t.Fatalf("got %v", got)
	}
	// Edges use shorter windows.
	if math.Abs(got[0]-4.5) > 1e-12 {
		t.Fatalf("edge smoothing wrong: %v", got)
	}
	if _, err := Smooth(nil, 2); err == nil {
		t.Error("even window should error")
	}
	id, err := Smooth([]float64{1, 2}, 1)
	if err != nil || id[1] != 2 {
		t.Fatal("window 1 should copy")
	}
}

// Property: resampling with AggMax never loses the global peak, and both
// aggregations preserve non-negativity and total length arithmetic.
func TestResampleProperties(t *testing.T) {
	prop := func(raw []float64, factorSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		peak := 0.0
		for i, v := range raw {
			xs[i] = math.Abs(math.Mod(v, 100))
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
			if xs[i] > peak {
				peak = xs[i]
			}
		}
		factor := 1 + int(factorSeed%7)
		got, err := Resample(xs, factor, AggMax)
		if err != nil {
			return false
		}
		wantLen := (len(xs) + factor - 1) / factor
		if len(got) != wantLen {
			return false
		}
		max := 0.0
		for _, v := range got {
			if v < 0 {
				return false
			}
			if v > max {
				max = v
			}
		}
		return max == peak
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
