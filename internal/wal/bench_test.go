package wal

import (
	"path/filepath"
	"testing"
)

// BenchmarkWALAppend measures the per-slot cost of the write-ahead
// path. sync=never is the hot-path figure benchsmoke.sh gates (0
// allocs/op); sync=always is dominated by fsync latency and recorded
// for orientation only.
func BenchmarkWALAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		sync SyncPolicy
	}{
		{"sync=never", SyncNever},
		{"sync=always", SyncAlways},
	} {
		b.Run(tc.name, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.wal")
			l, _, err := Open(path, []byte(`{"alg":"lcp"}`), Options{Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			counts := []int{48, 32, 16}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(Record{T: i + 1, Lambda: 123.456, Counts: counts}); err != nil {
					b.Fatal(err)
				}
				if l.Size() > 1<<26 {
					b.StopTimer()
					if err := l.Reset(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
		})
	}
}
