package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// FaultFS is the WAL-layer sibling of serve.FaultStore: a File factory
// with deterministic, seeded fault injection at the write and sync
// calls. It covers the failure modes a real disk exhibits under a
// write-ahead log:
//
//   - short writes: the write persists a prefix of the frame and
//     reports an error (the honest failure the log's truncate rollback
//     must repair);
//   - torn writes: the write persists a prefix but reports success —
//     the disk lied, and the loss surfaces only as a torn tail on the
//     next open (crash-consistency, not availability);
//   - sync failures: fsync reports an error after the bytes were
//     written, so the push must fail but the log stays parseable.
//
// Determinism: every decision is a pure function of (seed, op, file
// base name, per-(op,file) call ordinal), so the chaos differential
// replays identically under -race and -count=N regardless of goroutine
// interleaving.
type FaultFS struct {
	cfg FaultConfig

	mu    sync.Mutex
	calls map[string]uint64 // op+file -> calls so far

	shortWrites atomic.Uint64
	tornWrites  atomic.Uint64
	syncErrs    atomic.Uint64
	ops         atomic.Uint64
}

// FaultConfig tunes a FaultFS. Rates are probabilities in [0, 1].
type FaultConfig struct {
	Seed int64
	// ShortWriteRate fails a write after persisting a deterministic
	// prefix of it, returning an error.
	ShortWriteRate float64
	// TornWriteRate persists a deterministic prefix of a write but
	// reports full success.
	TornWriteRate float64
	// SyncErrRate fails a Sync call with an injected error.
	SyncErrRate float64
}

// FaultFSStats is a FaultFS's injection tally.
type FaultFSStats struct {
	Ops         uint64 // write + sync calls seen
	ShortWrites uint64 // writes failed with partial data
	TornWrites  uint64 // writes silently truncated
	SyncErrs    uint64 // syncs failed by injection
}

// NewFaultFS builds a fault-injecting File factory; pass its Open as
// Options.OpenFile.
func NewFaultFS(cfg FaultConfig) *FaultFS {
	return &FaultFS{cfg: cfg, calls: map[string]uint64{}}
}

// Stats snapshots the injection counters.
func (fs *FaultFS) Stats() FaultFSStats {
	return FaultFSStats{
		Ops:         fs.ops.Load(),
		ShortWrites: fs.shortWrites.Load(),
		TornWrites:  fs.tornWrites.Load(),
		SyncErrs:    fs.syncErrs.Load(),
	}
}

// Disarm switches all injection off; chaos tests use it to prove a log
// on a degraded disk heals once the disk does.
func (fs *FaultFS) Disarm() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cfg.ShortWriteRate, fs.cfg.TornWriteRate, fs.cfg.SyncErrRate = 0, 0, 0
}

// Open opens path like the default file layer but wrapped with this
// FaultFS's write/sync injection.
func (fs *FaultFS) Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, fs: fs, name: filepath.Base(path)}, nil
}

// roll draws the deterministic uniform values for this (op, file) call:
// u decides the fault, v sizes a partial write.
func (fs *FaultFS) roll(op, name string) (u, v float64, cfg FaultConfig) {
	fs.mu.Lock()
	key := op + "\x00" + name
	n := fs.calls[key]
	fs.calls[key] = n + 1
	cfg = fs.cfg
	fs.mu.Unlock()
	fs.ops.Add(1)

	h := splitmix(uint64(cfg.Seed) ^ fnv64(key) ^ (n * 0x9e3779b97f4a7c15))
	u = float64(h>>11) / (1 << 53)
	h = splitmix(h)
	v = float64(h>>11) / (1 << 53)
	return u, v, cfg
}

type faultFile struct {
	File
	fs   *FaultFS
	name string
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	u, v, cfg := f.fs.roll("write", f.name)
	switch {
	case u < cfg.ShortWriteRate:
		f.fs.shortWrites.Add(1)
		n := int(v * float64(len(p)))
		if wn, err := f.File.WriteAt(p[:n], off); err != nil {
			n = wn
		}
		return n, fmt.Errorf("faultfs: injected short write on %s (%d of %d bytes)", f.name, n, len(p))
	case u < cfg.ShortWriteRate+cfg.TornWriteRate:
		f.fs.tornWrites.Add(1)
		n := int(v * float64(len(p)))
		if _, err := f.File.WriteAt(p[:n], off); err != nil {
			return 0, err
		}
		return len(p), nil // the lie: a full write acknowledged, a prefix persisted
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) Sync() error {
	u, _, cfg := f.fs.roll("sync", f.name)
	if u < cfg.SyncErrRate {
		f.fs.syncErrs.Add(1)
		return fmt.Errorf("faultfs: injected sync failure on %s", f.name)
	}
	return f.File.Sync()
}

// fnv64 is FNV-1a over s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix advances a splitmix64 state.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
