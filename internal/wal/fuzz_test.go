package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildFrame assembles one valid frame for seed construction.
func buildFrame(typ byte, payload []byte) []byte {
	buf := make([]byte, frameHeaderLen, frameHeaderLen+1+len(payload))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-frameHeaderLen))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[frameHeaderLen:], castagnoli))
	return buf
}

func validLog(n int) []byte {
	log := buildFrame(recHeader, []byte(`{"alg":"lcp","fleet":{"scenario":"quickstart","seed":1}}`))
	for i := 1; i <= n; i++ {
		payload := []byte(`{"t":` + string(rune('0'+i%10)) + `,"lambda":2.5,"counts":[3,1]}`)
		log = append(log, buildFrame(recSlot, payload)...)
	}
	return log
}

// FuzzWALReplay feeds arbitrary bytes to the log scanner as a leftover
// WAL file. Whatever the corruption — truncation, bit flips, forged
// lengths, hostile frame counts — the scanner must never panic, must
// recover only whole checksummed decodable records, and the repaired
// log must accept new appends that parse back cleanly.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(validLog(0))
	f.Add(validLog(3))
	f.Add(validLog(8)[:50])
	corrupt := validLog(5)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	// A forged huge length field.
	forged := append(validLog(1), 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 'S')
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The pure scanner: no panic, consumed within bounds, stable.
		hdr, recs, consumed := parseFrames(data)
		if consumed < 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d out of bounds [0,%d]", consumed, len(data))
		}
		hdr2, recs2, consumed2 := parseFrames(data)
		if consumed2 != consumed || !reflect.DeepEqual(recs2, recs) || string(hdr2) != string(hdr) {
			t.Fatal("parseFrames is not deterministic")
		}
		// Every recovered record must re-encode into the exact frame
		// bytes at its offset: the valid prefix is real file content,
		// not an artifact of lenient parsing.
		off := int64(0)
		if hdr != nil {
			off = frameHeaderLen + 1 + int64(len(hdr))
		} else if consumed != 0 {
			t.Fatalf("no header but consumed %d", consumed)
		}
		for range recs {
			frame, body, ok := nextFrame(data[off:])
			if !ok || body[0] != recSlot {
				t.Fatalf("record at offset %d does not re-scan", off)
			}
			off += int64(frame)
		}
		if off != consumed {
			t.Fatalf("records end at %d but consumed %d", off, consumed)
		}

		// The full open path: write the bytes out, open with the file's
		// own header (or a fixed one), append, reopen, and require the
		// appended record back.
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		openHdr := hdr
		if openHdr == nil {
			openHdr = []byte("fuzz-header")
		}
		l, stats, err := Open(path, openHdr, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("Open after corruption: %v", err)
		}
		if !reflect.DeepEqual(stats.Records, recs) && !stats.Rewritten {
			t.Fatalf("Open recovered %d records, scan said %d", len(stats.Records), len(recs))
		}
		next := Record{T: len(stats.Records) + 1, Lambda: 6.25, Counts: []int{1, 2}}
		if _, err := l.Append(next); err != nil {
			t.Fatalf("Append after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		gotHdr, gotRecs, torn, err := Read(path)
		if err != nil || torn {
			t.Fatalf("reread: err=%v torn=%v", err, torn)
		}
		if string(gotHdr) != string(openHdr) {
			t.Fatalf("header %q lost after repair (want %q)", gotHdr, openHdr)
		}
		want := append(append([]Record{}, stats.Records...), next)
		if !reflect.DeepEqual(gotRecs, want) {
			t.Fatalf("after repair+append got %d records, want %d", len(gotRecs), len(want))
		}
	})
}
