// Package wal is the per-session write-ahead log behind crash-safe
// serving: an append-only file of slot inputs framed as
//
//	[4-byte LE payload length][4-byte LE CRC-32C][type byte | payload]
//
// where the length covers the type byte plus payload and the checksum
// (Castagnoli polynomial) covers the same bytes. The first frame is a
// header ('H') carrying an opaque blob the serving layer uses to
// rebuild a session that was never snapshotted (algorithm name + fleet
// spec); every later frame is a slot record ('S') whose payload is
// internal/wire's zero-alloc JSON encoding of wire.WALRecord.
//
// The log is the delta past the newest snapshot, not a full history:
// after a successful snapshot save the serving layer calls Reset, which
// truncates back to the header. Records carry their absolute 1-based
// slot index, so replay after a crash between save and Reset simply
// skips records the snapshot already covers — compaction can never
// double-apply or lose a slot.
//
// Opening a log scans it and truncates to the last whole, checksummed,
// decodable record (torn-tail repair): a crash mid-append leaves a
// partial frame that is detected and dropped, never a wedged session.
// FuzzWALReplay hammers the scanner with arbitrary corruption.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/wire"
)

// SyncPolicy controls when appends fsync. The zero value is SyncAlways:
// if a WAL is configured at all, the safe policy is the default.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged slot is on
	// disk before the algorithm steps, so SIGKILL loses nothing acked.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per interval: bounded loss
	// (everything since the last sync) at near-SyncNever append cost.
	// Append only checks the clock when called, so the time bound holds
	// on an idle log only if something sweeps it — the serving layer
	// flushes dirty logs on the same cadence (Manager.SyncWALs).
	SyncInterval
	// SyncNever writes without ever fsyncing: survives process death
	// (the page cache persists) but not kernel panic or power loss.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
}

// File is the slice of *os.File the log needs; the Options.OpenFile
// seam lets tests substitute fault-injecting implementations
// (FaultFS) for deterministic torn-write and sync-failure drills.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// Options configures a Log.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the maximum time between fsyncs under
	// SyncInterval (default 100ms).
	SyncInterval time.Duration
	// Now substitutes the clock for interval-policy tests (default
	// time.Now).
	Now func() time.Time
	// OpenFile substitutes the file layer for fault injection
	// (default: os.OpenFile with O_RDWR|O_CREATE).
	OpenFile func(path string) (File, error)
}

func (o *Options) now() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

func (o *Options) open(path string) (File, error) {
	if o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
}

func (o *Options) interval() time.Duration {
	if o.SyncInterval > 0 {
		return o.SyncInterval
	}
	return 100 * time.Millisecond
}

// Record is one logged slot input: the absolute 1-based slot index
// assigned at append time plus the slot's data. Replay skips records
// at or below a snapshot's slot count.
type Record struct {
	T      int
	Lambda float64
	Counts []int
}

// ScanStats reports what opening a log found.
type ScanStats struct {
	// Records are the valid slot records, in log order.
	Records []Record
	// Torn reports that a torn or corrupt tail was truncated away.
	Torn bool
	// TornBytes is how many trailing bytes the repair dropped.
	TornBytes int64
	// Rewritten reports that the header was missing or did not match
	// the caller's, so the log was reset (Records is then empty): the
	// file belonged to a previous incarnation of the session id.
	Rewritten bool
}

const (
	frameHeaderLen = 8
	recHeader      = 'H'
	recSlot        = 'S'
	// maxFrameLen bounds a frame's length field; anything larger is
	// corruption, not a record (slot payloads are tens of bytes).
	maxFrameLen = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrLogBroken is the sticky failure after an append could not be
// rolled back (the truncate repair itself failed): the log's tail state
// is unknown, so further appends would risk interleaving garbage.
var ErrLogBroken = errors.New("wal: log broken: failed to roll back a partial append")

// Log is an open per-session write-ahead log. It is not safe for
// concurrent use; the serving layer calls it under the session lock.
type Log struct {
	f        File
	path     string
	opts     Options
	buf      []byte
	size     int64 // current end-of-log offset
	hdrEnd   int64 // offset just past the header frame
	dirty    bool  // unsynced bytes outstanding
	lastSync time.Time
	broken   error
}

// Open opens (creating if absent) the log at path, scans it, repairs
// any torn tail, and ensures its header frame equals header: a missing
// or different header means the file is a leftover from an earlier
// incarnation of the session id, so the log is reset to just the new
// header and the stale records are dropped (ScanStats.Rewritten).
func Open(path string, header []byte, opts Options) (*Log, ScanStats, error) {
	var stats ScanStats
	// A header frame over maxFrameLen would write fine but be rejected by
	// nextFrame on the next Open: the log would read as headerless and be
	// silently reset, dropping every record. Refuse it up front instead.
	if len(header)+1 > maxFrameLen {
		return nil, stats, fmt.Errorf("wal: header for %s is %d bytes; the frame limit is %d", path, len(header), maxFrameLen-1)
	}
	f, err := opts.open(path)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: open %s: %w", path, err)
	}
	data, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("wal: read %s: %w", path, err)
	}
	hdr, recs, consumed := parseFrames(data)
	if int64(len(data)) > consumed {
		// Torn or corrupt tail: drop everything past the last whole
		// valid record.
		if err := f.Truncate(consumed); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		stats.Torn = true
		stats.TornBytes = int64(len(data)) - consumed
	}
	l := &Log{f: f, path: path, opts: opts, size: consumed, lastSync: opts.now()}
	if hdr == nil || string(hdr) != string(header) {
		stats.Rewritten = len(data) > 0
		if err := l.reset(0, header); err != nil {
			f.Close()
			return nil, stats, err
		}
	} else {
		l.hdrEnd = frameHeaderLen + 1 + int64(len(hdr))
		stats.Records = recs
		if stats.Torn && opts.Sync != SyncNever {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, stats, fmt.Errorf("wal: sync %s after repair: %w", path, err)
			}
		}
	}
	return l, stats, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Size returns the current end-of-log offset in bytes.
func (l *Log) Size() int64 { return l.size }

// Append logs one slot record, then fsyncs according to the sync
// policy; synced reports whether this append hit the disk. On a failed
// write or a failed fsync the frame is rolled back by truncation so the
// log stays valid and never retains a record whose push was not
// acknowledged; if the rollback itself fails, the log turns
// sticky-broken and every later Append fails with ErrLogBroken.
func (l *Log) Append(rec Record) (synced bool, err error) {
	if l.broken != nil {
		return false, l.broken
	}
	w := wire.WALRecord{T: int64(rec.T), Lambda: rec.Lambda, Counts: rec.Counts}
	buf := append(l.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0, recSlot)
	buf, err = wire.AppendWALRecord(buf, &w)
	l.buf = buf[:0]
	if err != nil {
		return false, fmt.Errorf("wal: encode record %d: %w", rec.T, err)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-frameHeaderLen))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[frameHeaderLen:], castagnoli))
	prev := l.size
	if err := l.write(buf); err != nil {
		return false, fmt.Errorf("wal: append record %d: %w", rec.T, err)
	}
	switch l.opts.Sync {
	case SyncAlways:
		err = l.Sync()
		synced = err == nil
	case SyncInterval:
		if l.opts.now().Sub(l.lastSync) >= l.opts.interval() {
			err = l.Sync()
			synced = err == nil
		}
	}
	if err != nil {
		// The record is written but not durable, so the push must fail —
		// and the frame must not outlive the failure. The slot index is
		// server-assigned, so the next acknowledged push reuses it, and
		// replay is first-wins on duplicate indices: a leftover unacked
		// frame would shadow the acked one after a crash whenever the
		// retry carried different data. Roll it back like a failed write.
		if terr := l.f.Truncate(prev); terr != nil {
			l.broken = fmt.Errorf("%w (sync: %v, rollback: %v)", ErrLogBroken, err, terr)
			return false, l.broken
		}
		l.size = prev
		return false, fmt.Errorf("wal: sync record %d: %w", rec.T, err)
	}
	return synced, nil
}

// write appends buf at the end of the log, rolling back on failure.
func (l *Log) write(buf []byte) error {
	n, err := l.f.WriteAt(buf, l.size)
	if err != nil || n < len(buf) {
		if err == nil {
			err = io.ErrShortWrite
		}
		if terr := l.f.Truncate(l.size); terr != nil {
			l.broken = fmt.Errorf("%w (append: %v, rollback: %v)", ErrLogBroken, err, terr)
			return l.broken
		}
		return err
	}
	l.size += int64(len(buf))
	l.dirty = true
	return nil
}

// Dirty reports whether the log holds written bytes not yet fsynced.
func (l *Log) Dirty() bool { return l.dirty }

// Sync fsyncs outstanding writes regardless of policy.
func (l *Log) Sync() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = l.opts.now()
	return nil
}

// Reset compacts the log down to its header frame. The serving layer
// calls it after a successful snapshot save: everything the log held is
// now covered by the snapshot.
func (l *Log) Reset() error {
	if l.broken != nil {
		return l.broken
	}
	if l.size == l.hdrEnd {
		return nil
	}
	if err := l.f.Truncate(l.hdrEnd); err != nil {
		return fmt.Errorf("wal: reset %s: %w", l.path, err)
	}
	l.size = l.hdrEnd
	l.dirty = true
	if l.opts.Sync != SyncNever {
		if err := l.Sync(); err != nil {
			return fmt.Errorf("wal: reset %s: %w", l.path, err)
		}
	}
	return nil
}

// reset truncates to length keep and writes a fresh header frame.
func (l *Log) reset(keep int64, header []byte) error {
	if err := l.f.Truncate(keep); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", l.path, err)
	}
	l.size = keep
	buf := append(l.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0, recHeader)
	buf = append(buf, header...)
	l.buf = buf[:0]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(buf)-frameHeaderLen))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[frameHeaderLen:], castagnoli))
	if err := l.write(buf); err != nil {
		return fmt.Errorf("wal: write header of %s: %w", l.path, err)
	}
	l.hdrEnd = l.size
	if l.opts.Sync != SyncNever {
		if err := l.Sync(); err != nil {
			return fmt.Errorf("wal: sync header of %s: %w", l.path, err)
		}
	}
	return nil
}

// Close fsyncs outstanding writes (unless the policy is SyncNever) and
// closes the file.
func (l *Log) Close() error {
	var err error
	if l.broken == nil && l.opts.Sync != SyncNever {
		err = l.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read parses the log file at path without taking write ownership:
// the recovery scan uses it to inspect every leftover log. It returns
// the header blob (nil when the file is empty or its header frame is
// invalid), the valid slot records, and whether trailing bytes past the
// valid prefix exist (a torn tail the next Open would repair). err is
// only an I/O error; corruption is never an error, just a shorter
// prefix.
func Read(path string) (header []byte, recs []Record, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	hdr, recs, consumed := parseFrames(data)
	return hdr, recs, consumed < int64(len(data)), nil
}

// parseFrames scans data for the longest valid prefix: a header frame
// followed by whole, checksummed, decodable slot records. It returns
// the header payload (nil if the first frame is not a valid header),
// the records, and the number of bytes consumed by the valid prefix.
func parseFrames(data []byte) (hdr []byte, recs []Record, consumed int64) {
	off := 0
	first := true
	for {
		frame, body, ok := nextFrame(data[off:])
		if !ok {
			return hdr, recs, int64(off)
		}
		typ := body[0]
		if first {
			if typ != recHeader {
				return nil, nil, 0
			}
			hdr = body[1:]
			first = false
			off += frame
			continue
		}
		if typ != recSlot {
			return hdr, recs, int64(off)
		}
		var w wire.WALRecord
		if err := wire.DecodeWALRecord(body[1:], &w); err != nil {
			return hdr, recs, int64(off)
		}
		recs = append(recs, Record{T: int(w.T), Lambda: w.Lambda, Counts: w.Counts})
		off += frame
	}
}

// nextFrame validates the frame at the start of data, returning its
// total length and its body (type byte + payload).
func nextFrame(data []byte) (frame int, body []byte, ok bool) {
	if len(data) < frameHeaderLen {
		return 0, nil, false
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	if length == 0 || length > maxFrameLen || int64(len(data)-frameHeaderLen) < int64(length) {
		return 0, nil, false
	}
	body = data[frameHeaderLen : frameHeaderLen+int(length)]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return 0, nil, false
	}
	return frameHeaderLen + int(length), body, true
}

// readAll reads the file's full contents through the File seam.
func readAll(f File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size())
	n, err := f.ReadAt(buf, 0)
	if err == io.EOF || n == len(buf) {
		err = nil
	}
	return buf[:n], err
}
