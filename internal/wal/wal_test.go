package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{T: i + 1, Lambda: float64(i) * 1.5}
		if i%3 == 0 {
			recs[i].Counts = []int{i + 2, i}
		}
	}
	return recs
}

func mustOpen(t *testing.T, path string, header []byte, opts Options) (*Log, ScanStats) {
	t.Helper()
	l, stats, err := Open(path, header, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, stats
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatalf("Append(%+v): %v", rec, err)
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s1.wal")
	hdr := []byte(`{"alg":"lcp","fleet":{}}`)
	recs := testRecords(17)

	l, stats := mustOpen(t, path, hdr, Options{Sync: SyncAlways})
	if len(stats.Records) != 0 || stats.Torn || stats.Rewritten {
		t.Fatalf("fresh open: unexpected stats %+v", stats)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	gotHdr, gotRecs, torn, err := Read(path)
	if err != nil || torn {
		t.Fatalf("Read: err=%v torn=%v", err, torn)
	}
	if string(gotHdr) != string(hdr) {
		t.Fatalf("header %q != %q", gotHdr, hdr)
	}
	if !reflect.DeepEqual(gotRecs, recs) {
		t.Fatalf("records %+v != %+v", gotRecs, recs)
	}

	l2, stats2 := mustOpen(t, path, hdr, Options{Sync: SyncNever})
	defer l2.Close()
	if !reflect.DeepEqual(stats2.Records, recs) || stats2.Torn || stats2.Rewritten {
		t.Fatalf("reopen stats %+v", stats2)
	}
}

func TestLogTornTailTruncation(t *testing.T) {
	hdr := []byte("h")
	recs := testRecords(9)
	// chop k trailing bytes for several k and verify the longest valid
	// prefix comes back and a re-append after repair parses cleanly.
	for _, chop := range []int{1, 3, 7, 12, 25} {
		path := filepath.Join(t.TempDir(), "torn.wal")
		l, _ := mustOpen(t, path, hdr, Options{Sync: SyncNever})
		appendAll(t, l, recs)
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-int64(chop)); err != nil {
			t.Fatal(err)
		}

		_, _, torn, err := Read(path)
		if err != nil || !torn {
			t.Fatalf("chop %d: Read err=%v torn=%v", chop, err, torn)
		}
		l2, stats := mustOpen(t, path, hdr, Options{Sync: SyncAlways})
		if !stats.Torn || stats.TornBytes == 0 {
			t.Fatalf("chop %d: expected torn repair, got %+v", chop, stats)
		}
		if len(stats.Records) >= len(recs) {
			t.Fatalf("chop %d: no record dropped (%d)", chop, len(stats.Records))
		}
		if !reflect.DeepEqual(stats.Records, recs[:len(stats.Records)]) {
			t.Fatalf("chop %d: recovered records are not a prefix", chop)
		}
		next := Record{T: len(stats.Records) + 1, Lambda: 42}
		if _, err := l2.Append(next); err != nil {
			t.Fatalf("chop %d: append after repair: %v", chop, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, gotRecs, torn, err := Read(path)
		if err != nil || torn {
			t.Fatalf("chop %d: reread err=%v torn=%v", chop, err, torn)
		}
		want := append(append([]Record{}, recs[:len(stats.Records)]...), next)
		if !reflect.DeepEqual(gotRecs, want) {
			t.Fatalf("chop %d: after re-append got %+v want %+v", chop, gotRecs, want)
		}
	}
}

func TestLogCorruptMiddleStopsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.wal")
	hdr := []byte("h")
	recs := testRecords(6)
	l, _ := mustOpen(t, path, hdr, Options{Sync: SyncNever})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte just past the midpoint: everything from the frame it
	// lands in onward must be dropped.
	data[len(data)/2+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, gotRecs, torn, err := Read(path)
	if err != nil || !torn {
		t.Fatalf("Read err=%v torn=%v", err, torn)
	}
	if len(gotRecs) >= len(recs) {
		t.Fatalf("corruption not detected: %d records", len(gotRecs))
	}
	if !reflect.DeepEqual(gotRecs, recs[:len(gotRecs)]) {
		t.Fatalf("recovered records are not a prefix")
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.wal")
	hdr := []byte("header-blob")
	l, _ := mustOpen(t, path, hdr, Options{Sync: SyncAlways})
	appendAll(t, l, testRecords(5))
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	gotHdr, gotRecs, torn, err := Read(path)
	if err != nil || torn {
		t.Fatalf("Read err=%v torn=%v", err, torn)
	}
	if string(gotHdr) != string(hdr) || len(gotRecs) != 0 {
		t.Fatalf("after reset: header %q records %d", gotHdr, len(gotRecs))
	}
	// The log keeps working after compaction.
	if _, err := l.Append(Record{T: 6, Lambda: 1}); err != nil {
		t.Fatalf("Append after Reset: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, gotRecs, _, err = Read(path)
	if err != nil || len(gotRecs) != 1 || gotRecs[0].T != 6 {
		t.Fatalf("after reset+append: %v %+v", err, gotRecs)
	}
}

func TestLogHeaderMismatchResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hdr.wal")
	l, _ := mustOpen(t, path, []byte("incarnation-1"), Options{Sync: SyncNever})
	appendAll(t, l, testRecords(4))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, stats := mustOpen(t, path, []byte("incarnation-2"), Options{Sync: SyncNever})
	defer l2.Close()
	if !stats.Rewritten || len(stats.Records) != 0 {
		t.Fatalf("mismatched header: stats %+v", stats)
	}
	gotHdr, gotRecs, _, err := Read(path)
	if err != nil || string(gotHdr) != "incarnation-2" || len(gotRecs) != 0 {
		t.Fatalf("after rewrite: %v %q %d", err, gotHdr, len(gotRecs))
	}
}

// countFile counts Sync calls through the seam.
type countFile struct {
	File
	syncs *int
}

func (f countFile) Sync() error { *f.syncs++; return f.File.Sync() }

func countingOpts(syncs *int, opts Options) Options {
	opts.OpenFile = func(path string) (File, error) {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		return countFile{File: f, syncs: syncs}, nil
	}
	return opts
}

func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		syncs := 0
		path := filepath.Join(t.TempDir(), "a.wal")
		l, _ := mustOpen(t, path, []byte("h"), countingOpts(&syncs, Options{Sync: SyncAlways}))
		base := syncs // header write syncs once
		for i := 1; i <= 5; i++ {
			synced, err := l.Append(Record{T: i})
			if err != nil || !synced {
				t.Fatalf("append %d: synced=%v err=%v", i, synced, err)
			}
		}
		if syncs-base != 5 {
			t.Fatalf("always: %d syncs for 5 appends", syncs-base)
		}
		l.Close()
	})
	t.Run("never", func(t *testing.T) {
		syncs := 0
		path := filepath.Join(t.TempDir(), "n.wal")
		l, _ := mustOpen(t, path, []byte("h"), countingOpts(&syncs, Options{Sync: SyncNever}))
		for i := 1; i <= 5; i++ {
			synced, err := l.Append(Record{T: i})
			if err != nil || synced {
				t.Fatalf("append %d: synced=%v err=%v", i, synced, err)
			}
		}
		l.Close()
		if syncs != 0 {
			t.Fatalf("never: %d syncs", syncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		syncs := 0
		now := time.Unix(0, 0)
		clock := func() time.Time { return now }
		path := filepath.Join(t.TempDir(), "i.wal")
		opts := countingOpts(&syncs, Options{Sync: SyncInterval, SyncInterval: time.Second, Now: clock})
		l, _ := mustOpen(t, path, []byte("h"), opts)
		base := syncs
		for i := 1; i <= 10; i++ {
			now = now.Add(300 * time.Millisecond)
			if _, err := l.Append(Record{T: i}); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		// Appends land at 0.3s steps; with a 1s interval the elapsed
		// check fires at t=1.2s and t=2.4s: 2 syncs, not 10.
		if got := syncs - base; got != 2 {
			t.Fatalf("interval: %d syncs, want 2", got)
		}
		l.Close()
	})
}

func TestShortWriteRollsBack(t *testing.T) {
	fs := NewFaultFS(FaultConfig{Seed: 42, ShortWriteRate: 1})
	path := filepath.Join(t.TempDir(), "short.wal")
	_, _, err := Open(path, []byte("h"), Options{Sync: SyncNever, OpenFile: fs.Open})
	if err == nil {
		// Header write itself may fail; if it somehow succeeded the
		// injection is broken.
		t.Fatalf("expected header write to fail under ShortWriteRate=1")
	}
	fs.Disarm()
	l, _ := mustOpen(t, path, []byte("h"), Options{Sync: SyncNever, OpenFile: fs.Open})
	fs.mu.Lock()
	fs.cfg.ShortWriteRate = 1
	fs.mu.Unlock()
	if _, err := l.Append(Record{T: 1}); err == nil {
		t.Fatal("expected injected short-write failure")
	}
	size := l.Size()
	fs.Disarm()
	if _, err := l.Append(Record{T: 1}); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if l.Size() <= size {
		t.Fatal("append after heal did not grow the log")
	}
	l.Close()
	_, recs, torn, err := Read(path)
	if err != nil || torn || len(recs) != 1 {
		t.Fatalf("after rollback+retry: err=%v torn=%v recs=%d", err, torn, len(recs))
	}
	if fs.Stats().ShortWrites == 0 {
		t.Fatal("no short writes counted")
	}
}

func TestTornWriteSurfacesOnReopen(t *testing.T) {
	fs := NewFaultFS(FaultConfig{Seed: 7, TornWriteRate: 0})
	path := filepath.Join(t.TempDir(), "torninj.wal")
	l, _ := mustOpen(t, path, []byte("h"), Options{Sync: SyncNever, OpenFile: fs.Open})
	appendAll(t, l, testRecords(3))
	// Arm torn writes for the 4th record only.
	fs.mu.Lock()
	fs.cfg.TornWriteRate = 1
	fs.mu.Unlock()
	if _, err := l.Append(Record{T: 4, Lambda: 9}); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	fs.Disarm()
	l.Close()
	_, recs, torn, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn && len(recs) == 4 {
		// A zero-length tear (v rounded to the full frame is impossible:
		// n < len(p) always since v < 1) would mean injection failed.
		t.Fatal("torn write left a fully valid log")
	}
	if len(recs) > 3 {
		t.Fatalf("torn record parsed as valid: %d records", len(recs))
	}
	if !reflect.DeepEqual(recs, testRecords(3)[:len(recs)]) {
		t.Fatal("recovered records are not a prefix")
	}
	if fs.Stats().TornWrites != 1 {
		t.Fatalf("torn writes counted %d", fs.Stats().TornWrites)
	}
}

func TestSyncErrRollsBackRecord(t *testing.T) {
	fs := NewFaultFS(FaultConfig{Seed: 11})
	path := filepath.Join(t.TempDir(), "syncerr.wal")
	l, _ := mustOpen(t, path, []byte("h"), Options{Sync: SyncAlways, OpenFile: fs.Open})
	appendAll(t, l, testRecords(2))
	size := l.Size()
	fs.mu.Lock()
	fs.cfg.SyncErrRate = 1
	fs.mu.Unlock()
	if _, err := l.Append(Record{T: 3, Lambda: 5}); err == nil {
		t.Fatal("expected injected sync failure")
	}
	// The unacknowledged frame must not survive the failure: the slot
	// index is server-assigned, so the next acknowledged push reuses it,
	// and replay is first-wins on duplicates — a leftover frame would
	// shadow the acked payload after a crash.
	if l.Size() != size {
		t.Fatalf("failed sync left the log at %d bytes, want rollback to %d", l.Size(), size)
	}
	fs.Disarm()
	// The retry carries different data (the client recomputed the slot);
	// the retried payload, not the failed one, must be what replay sees.
	if _, err := l.Append(Record{T: 3, Lambda: 7}); err != nil {
		t.Fatalf("retry after sync failure: %v", err)
	}
	l.Close()
	_, recs, torn, err := Read(path)
	if err != nil || torn {
		t.Fatalf("err=%v torn=%v", err, torn)
	}
	if len(recs) != 3 || recs[2].T != 3 || recs[2].Lambda != 7 {
		t.Fatalf("expected exactly one T=3 record with the retried payload, got %+v", recs)
	}
}

func TestOversizedHeaderRejectedAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bighdr.wal")
	hdr := make([]byte, maxFrameLen) // +1 type byte pushes the frame past the limit
	if _, _, err := Open(path, hdr, Options{Sync: SyncNever}); err == nil {
		t.Fatal("an over-limit header must be rejected at Open, not silently dropped on the next reopen")
	}
	// At the limit it round-trips.
	hdr = hdr[:maxFrameLen-1]
	l, _ := mustOpen(t, path, hdr, Options{Sync: SyncNever})
	appendAll(t, l, testRecords(1))
	l.Close()
	got, recs, torn, err := Read(path)
	if err != nil || torn || len(got) != len(hdr) || len(recs) != 1 {
		t.Fatalf("limit-sized header did not survive reopen: hdr=%d recs=%d torn=%v err=%v", len(got), len(recs), torn, err)
	}
}

// brokenFile fails writes and refuses the rollback truncate.
type brokenFile struct {
	File
	armed bool
}

func (f *brokenFile) WriteAt(p []byte, off int64) (int, error) {
	if f.armed {
		n, _ := f.File.WriteAt(p[:len(p)/2], off)
		return n, errors.New("disk on fire")
	}
	return f.File.WriteAt(p, off)
}

func (f *brokenFile) Truncate(size int64) error {
	if f.armed {
		return errors.New("truncate refused")
	}
	return f.File.Truncate(size)
}

func TestFailedRollbackBreaksLog(t *testing.T) {
	var bf *brokenFile
	opts := Options{Sync: SyncNever, OpenFile: func(path string) (File, error) {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		bf = &brokenFile{File: f}
		return bf, nil
	}}
	path := filepath.Join(t.TempDir(), "broken.wal")
	l, _ := mustOpen(t, path, []byte("h"), opts)
	appendAll(t, l, testRecords(2))
	bf.armed = true
	if _, err := l.Append(Record{T: 3}); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("expected ErrLogBroken, got %v", err)
	}
	bf.armed = false
	if _, err := l.Append(Record{T: 3}); !errors.Is(err, ErrLogBroken) {
		t.Fatalf("broken log must stay broken, got %v", err)
	}
	l.Close()
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"", 0, false},
		{"ALWAYS", 0, false},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, got.String())
		}
	}
}

func TestAppendZeroAllocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alloc.wal")
	l, _ := mustOpen(t, path, []byte("h"), Options{Sync: SyncNever})
	defer l.Close()
	counts := []int{4, 2, 0}
	i := 0
	// Warm up the frame buffer.
	if _, err := l.Append(Record{T: 1, Lambda: 2.5, Counts: counts}); err != nil {
		t.Fatal(err)
	}
	i = 1
	allocs := testing.AllocsPerRun(200, func() {
		i++
		if _, err := l.Append(Record{T: i, Lambda: 2.5, Counts: counts}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %v per op, want 0", allocs)
	}
}
