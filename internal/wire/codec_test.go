package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stream"
)

// refDecode is the reference decoder the wire scanner must agree with:
// a strict json.Decoder exactly as internal/serve's decodeStrict
// configures it (DisallowUnknownFields, single Decode call, trailing
// data ignored).
func refDecode(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

func checkEncode(t *testing.T, name string, got []byte, gotErr error, val any) {
	t.Helper()
	want, wantErr := json.Marshal(val)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("%s: wire err=%v, json err=%v", name, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: wire %q != json %q", name, got, want)
	}
}

func TestAppendStringMatchesJSON(t *testing.T) {
	cases := []string{
		"", "plain", "with space", `quote " backslash \`,
		"tab\tnewline\ncr\rbell\abs\bff\f",
		"\x00\x01\x1f\x7f",
		"html <b>&amp;</b>",
		"unicode é ſ 世界 🚀",
		"line sep   par sep  ",
		"invalid \xff\xfe utf8", "truncated \xc3", "lone cont \x80",
		"mixed \xed\xa0\x80 surrogate bytes",
	}
	for b := 0; b < 256; b++ {
		cases = append(cases, "x"+string(rune(b)), string([]byte{byte(b)}))
	}
	for _, s := range cases {
		got := AppendString(nil, s)
		checkEncode(t, "AppendString", got, nil, s)
	}
}

func TestAppendFloatMatchesJSON(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 1e-6, 9.9e-7, 1e-7,
		1e20, 1e21, 1.5e21, -1e21, 1e-300, 1e300, 5e-324,
		math.MaxFloat64, math.SmallestNonzeroFloat64, math.Pi, 1.0 / 3.0,
		123456.789, 2628267.25, 1e6, 48, 0.1,
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		cases = append(cases,
			rng.NormFloat64(),
			math.Float64frombits(rng.Uint64()),
			rng.ExpFloat64()*math.Pow(10, float64(rng.Intn(640)-320)),
		)
	}
	for _, f := range cases {
		got, err := AppendFloat(nil, f)
		checkEncode(t, "AppendFloat", got, err, f)
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := AppendFloat(nil, f); err == nil {
			t.Fatalf("AppendFloat(%v): expected error", f)
		}
	}
}

func testAdvisories() []*stream.Advisory {
	return []*stream.Advisory{
		{},
		{Slot: 1, Lambda: 3.5, Config: []int{2, 0, 1}, Active: 3,
			Operating: 12.25, Switching: 4, CumCost: 100.5,
			Opt: 90.25, Ratio: 1.1135, Pending: 2},
		{Slot: 48, Lambda: 0, Config: []int{}, Active: 0,
			Operating: 0.3333333333333333, Switching: -0, CumCost: 1e-9},
		{Slot: -3, Lambda: 1e21, Config: nil, Active: 1 << 40,
			Operating: 5e-324, Switching: math.MaxFloat64, CumCost: -1e-7},
	}
}

func TestEncodeMatchesJSON(t *testing.T) {
	for _, adv := range testAdvisories() {
		got, err := AppendAdvisory(nil, adv)
		checkEncode(t, "AppendAdvisory", got, err, adv)

		for _, res := range []PushResult{{Decided: false}, {Decided: true, Advisory: adv}} {
			got, err := AppendPushResult(nil, &res)
			checkEncode(t, "AppendPushResult", got, err, res)
		}
	}

	batches := [][]PushResult{
		nil,
		{},
		{{Decided: true, Advisory: testAdvisories()[1]}, {Decided: false}},
	}
	for _, batch := range batches {
		got, err := AppendPushResults(nil, batch)
		checkEncode(t, "AppendPushResults", got, err, batch)

		bgot, berr := AppendBatchError(nil, "session sess-1: slot 3: bad", batch)
		bwant := struct {
			Error   string       `json:"error"`
			Results []PushResult `json:"results"`
		}{"session sess-1: slot 3: bad", batch}
		checkEncode(t, "AppendBatchError", bgot, berr, bwant)
	}

	for _, msg := range []string{"", "unknown session", `odd "msg" <&>`, "bad \xff"} {
		got := AppendError(nil, msg)
		want := struct {
			Error string `json:"error"`
		}{msg}
		checkEncode(t, "AppendError", got, nil, want)
	}

	reqs := []PushRequest{
		{},
		{Lambda: 2.5},
		{Lambda: -0.25, Counts: []int{4, 0, 9}},
		{Counts: []int{}},
	}
	for _, req := range reqs {
		got, err := AppendPushRequest(nil, &req)
		checkEncode(t, "AppendPushRequest", got, err, req)
	}
	for _, batch := range [][]PushRequest{nil, {}, reqs} {
		got, err := AppendPushRequests(nil, batch)
		checkEncode(t, "AppendPushRequests", got, err, batch)
	}

	// Non-finite floats must fail exactly where json.Marshal fails.
	bad := &stream.Advisory{Lambda: math.NaN()}
	if _, err := AppendAdvisory(nil, bad); err == nil {
		t.Fatal("AppendAdvisory(NaN): expected error")
	}
	if _, err := json.Marshal(bad); err == nil {
		t.Fatal("json.Marshal(NaN): expected error")
	}
}

// decodeCases is the decode-parity corpus: every probed corner of the
// strict reference decoder. Each input is checked for accept/reject and
// value agreement in both single and batch form by
// TestDecodeMatchesJSON (and fuzzed further by FuzzWireCodec).
var decodeCases = []string{
	// Plain valid inputs.
	`{}`, `{"lambda":1.5}`, `{"lambda":1.5,"counts":[3,1]}`,
	`{"counts":[],"lambda":0}`, ` { "lambda" : 2 , "counts" : [ 1 , 2 ] } `,
	`[]`, `[{"lambda":1}]`, `[{"lambda":1},{"lambda":2,"counts":[5]}]`,
	`[{},null,{}]`, `null`, `  null  `,
	// Case folding and escaped keys.
	`{"Lambda":1}`, `{"LAMBDA":1}`, `{"lAmBdA":1}`, `{"countſ":[1]}`,
	`{"lambda":1}`, `{"Lambda":1}`, `{"ſ":1}`,
	"{\"lambda\x00\":1}", `{"count😀":[1]}`, `{"count\uD800s":[1]}`,
	// Null no-ops and duplicate-key merges.
	`{"lambda":null}`, `{"counts":null}`, `{"lambda":1,"lambda":null}`,
	`{"counts":[9],"counts":[null]}`, `{"counts":[9],"counts":null}`,
	`{"counts":[1,2,3],"counts":[7]}`, `{"counts":[1],"counts":[null,null]}`,
	`{"counts":[9],"counts":[]}`, `{"lambda":1,"lambda":2}`,
	`[null]`, `[null,null]`,
	// Number edge cases.
	`{"lambda":-0}`, `{"lambda":1e-999}`, `{"lambda":1e309}`, `{"lambda":-1e309}`,
	`{"lambda":1e999}`, `{"lambda":5e-324}`, `{"lambda":1E+2}`, `{"lambda":0.5e1}`,
	`{"lambda":01}`, `{"lambda":.5}`, `{"lambda":+1}`, `{"lambda":1.}`,
	`{"lambda":1.e5}`, `{"lambda":-}`, `{"lambda":0x10}`, `{"lambda":Infinity}`,
	`{"lambda":NaN}`, `{"lambda":1_000}`, `{"lambda":1e}`, `{"lambda":1e+}`,
	`{"counts":[-0]}`, `{"counts":[1.0]}`, `{"counts":[1e2]}`,
	`{"counts":[9223372036854775807]}`, `{"counts":[9223372036854775808]}`,
	`{"counts":[-9223372036854775808]}`, `{"counts":[-9223372036854775809]}`,
	// Type mismatches.
	`{"lambda":"1"}`, `{"lambda":true}`, `{"lambda":[1]}`, `{"lambda":{}}`,
	`{"counts":"x"}`, `{"counts":1}`, `{"counts":[true]}`, `{"counts":[[1]]}`,
	`{"counts":[{}]}`, `{"counts":["1"]}`, `[1]`, `["x"]`, `[true]`, `[[]]`,
	`{"x":1}`, `{"":1}`, `true`, `false`, `12`, `"str"`,
	// Unknown fields (strict mode).
	`{"bogus":1}`, `{"lambda":1,"bogus":2}`, `{"bogus":1,"lambda":1}`,
	`{"lambdas":1}`, `{"lamb":1}`, `{"lambda ":1}`, `{" lambda":1}`,
	// Trailing data after the top-level value (ignored by the reference).
	`{}x`, `{} x`, `{"lambda":1}]`, `[]]`, `[]{}`, `nullx`, `nulll`, `null null`,
	`{"lambda":1}{"lambda":2}`,
	// Syntax errors and truncation.
	``, ` `, `{`, `}`, `{]`, `[}`, `[`, `]`, `{,}`, `[,]`, `[{},]`, `{"lambda":1,}`,
	`{"lambda"}`, `{"lambda":}`, `{"lambda":1 "counts":[]}`, `{lambda:1}`,
	`{'lambda':1}`, `{"lambda":1;}`, `{"lambda":nul}`, `{"lambda":nullx}`,
	`{"lambda":12x}`, `{"lambda`, `{"lambda\`, `{"lambda\u00`, `{"lambda\x61":1}`,
	"{\"lam\x01bda\":1}", `{"lambda":1`, `[{"lambda":1}`, `[{"lambda":1},`,
	`nul`, `n`, `nuLl`, `[nul]`, `[nulll]`, `{"counts":[1,]}`, `{"counts":[1`,
	`{"counts":[1,2`, `{"counts":[01]}`,
	// Raw invalid UTF-8 inside strings (scanner passes bytes >= 0x20).
	"{\"lambda\xff\":1}", "{\"\xff\":1}",
	// Very long unknown key (exceeds the unquote scratch buffer).
	`{"` + `abcd` + `abcdefghijklmnopqrstuvwxyz0123456789` +
		`abcdefghijklmnopqrstuvwxyz0123456789` + `":1}`,
}

func checkDecodeParity(t *testing.T, data []byte) {
	t.Helper()

	var wreq, jreq PushRequest
	werr := DecodePushRequest(data, &wreq)
	jerr := refDecode(data, &jreq)
	if (werr == nil) != (jerr == nil) {
		t.Fatalf("single %q: wire err=%v, json err=%v", data, werr, jerr)
	}
	if werr == nil {
		if math.Float64bits(wreq.Lambda) != math.Float64bits(jreq.Lambda) {
			t.Fatalf("single %q: wire lambda=%v, json lambda=%v", data, wreq.Lambda, jreq.Lambda)
		}
		if !reflect.DeepEqual(wreq.Counts, jreq.Counts) {
			t.Fatalf("single %q: wire counts=%#v, json counts=%#v", data, wreq.Counts, jreq.Counts)
		}
	}

	var wbatch, jbatch []PushRequest
	werr = DecodePushRequests(data, &wbatch)
	jerr = refDecode(data, &jbatch)
	if (werr == nil) != (jerr == nil) {
		t.Fatalf("batch %q: wire err=%v, json err=%v", data, werr, jerr)
	}
	if werr == nil {
		if len(wbatch) != len(jbatch) || (wbatch == nil) != (jbatch == nil) {
			t.Fatalf("batch %q: wire %#v, json %#v", data, wbatch, jbatch)
		}
		for i := range wbatch {
			if math.Float64bits(wbatch[i].Lambda) != math.Float64bits(jbatch[i].Lambda) ||
				!reflect.DeepEqual(wbatch[i].Counts, jbatch[i].Counts) {
				t.Fatalf("batch %q: wire %#v, json %#v", data, wbatch, jbatch)
			}
		}
	}
}

func TestDecodeMatchesJSON(t *testing.T) {
	for _, tc := range decodeCases {
		checkDecodeParity(t, []byte(tc))
	}
}

// TestDecodeMerge pins the in-place merge semantics DecodePushRequest
// shares with json.Decoder when the target is not zero (serve always
// passes zero targets, but the contract is part of the parity claim).
func TestDecodeMerge(t *testing.T) {
	for _, tc := range []string{
		`{"lambda":null}`, `{"counts":null}`, `{"counts":[null,7]}`,
		`{"counts":[]}`, `{}`, `null`, `{"lambda":9}`,
	} {
		wreq := PushRequest{Lambda: 1.5, Counts: []int{4, 5, 6}}
		jreq := PushRequest{Lambda: 1.5, Counts: []int{4, 5, 6}}
		werr := DecodePushRequest([]byte(tc), &wreq)
		jerr := refDecode([]byte(tc), &jreq)
		if (werr == nil) != (jerr == nil) {
			t.Fatalf("%q: wire err=%v, json err=%v", tc, werr, jerr)
		}
		if werr == nil && (math.Float64bits(wreq.Lambda) != math.Float64bits(jreq.Lambda) ||
			!reflect.DeepEqual(wreq.Counts, jreq.Counts)) {
			t.Fatalf("%q: wire %#v, json %#v", tc, wreq, jreq)
		}
	}
}

func TestDecodeAllocs(t *testing.T) {
	data := []byte(`{"lambda":3.25}`)
	allocs := testing.AllocsPerRun(200, func() {
		var req PushRequest
		if err := DecodePushRequest(data, &req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodePushRequest allocs/op = %v, want 0", allocs)
	}
}

func TestEncodeAllocs(t *testing.T) {
	adv := testAdvisories()[1]
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf = buf[:0]
		if buf, err = AppendPushResult(buf, &PushResult{Decided: true, Advisory: adv}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendPushResult allocs/op = %v, want 0", allocs)
	}
}
