package wire

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"
)

// The decoder: a hand-rolled scanner over the raw request bytes with no
// reflection and no allocation on well-formed input (the only growth is
// the target Counts/batch slices themselves). It accepts exactly the
// inputs a strict json.Decoder (DisallowUnknownFields) accepts and
// produces identical values — including the obscure corners, which are
// load-bearing for the ReflectCodec differential tests:
//
//   - trailing bytes after the top-level value are ignored, even
//     syntactically invalid ones ("{}x", "nullx"): the reference
//     decoder's readValue stops at the end of the first value;
//   - null zeroes nilable targets (the counts slice, the batch slice)
//     and is a no-op for everything else (structs, floats, array
//     elements), exactly json.Decoder's kind-dependent null handling;
//   - duplicate keys merge element-wise, last key wins
//     ({"counts":[9],"counts":[null]} decodes to [9]);
//   - field names match case-insensitively under SimpleFold (fold.go),
//     after unescaping ("lambda", "LAMBDA", "countſ" all match);
//   - numbers follow the JSON grammar, then strconv: floats accept
//     underflow (1e-999 is 0) but reject overflow (1e309); ints reject
//     any fraction or exponent ("1.0", "1e2") and int64 overflow;
//   - "[]" decodes to a non-nil empty slice, null leaves it nil.
//
// Error messages are wire's own; callers needing encoding/json's exact
// prose re-decode the (already known malformed) input with it.

// A DecodeError reports malformed or unacceptable input with its byte
// offset. Its text intentionally differs from encoding/json's.
type DecodeError struct {
	Offset int
	Msg    string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: %s at offset %d", e.Msg, e.Offset)
}

// DecodePushRequest decodes one push object (or null) into dst,
// merging into dst's existing contents exactly as json.Decoder does.
// On error dst may hold partially decoded state.
func DecodePushRequest(data []byte, dst *PushRequest) error {
	d := decoder{data: data}
	d.skipWS()
	c, ok := d.peek()
	switch {
	case !ok:
		return d.fail("unexpected end of input")
	case c == '{':
		return d.object(dst)
	case c == 'n':
		return d.null()
	}
	return d.fail("expected object or null")
}

// DecodePushRequests decodes a batch push array (or null) into dst with
// json.Decoder's slice semantics: "[]" yields a non-nil empty slice,
// null sets dst to nil, elements merge into existing entries.
func DecodePushRequests(data []byte, dst *[]PushRequest) error {
	d := decoder{data: data}
	d.skipWS()
	c, ok := d.peek()
	switch {
	case !ok:
		return d.fail("unexpected end of input")
	case c == '[':
		return d.requestArray(dst)
	case c == 'n':
		if err := d.null(); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	return d.fail("expected array or null")
}

var (
	emptyInts     = make([]int, 0)
	emptyRequests = make([]PushRequest, 0)
)

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) fail(msg string) error {
	return &DecodeError{Offset: d.pos, Msg: msg}
}

func (d *decoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

func (d *decoder) peek() (byte, bool) {
	if d.pos < len(d.data) {
		return d.data[d.pos], true
	}
	return 0, false
}

// null consumes the literal "null". The caller's delimiter check (or
// the ignored-trailing-data rule at top level) handles what follows.
func (d *decoder) null() error {
	if len(d.data)-d.pos >= 4 && string(d.data[d.pos:d.pos+4]) == "null" {
		d.pos += 4
		return nil
	}
	return d.fail("invalid literal")
}

// object decodes {"lambda":..., "counts":...} into dst, rejecting
// unknown fields as DisallowUnknownFields does.
func (d *decoder) object(dst *PushRequest) error {
	d.pos++ // '{'
	d.skipWS()
	if c, ok := d.peek(); ok && c == '}' {
		d.pos++
		return nil
	}
	for {
		c, ok := d.peek()
		if !ok {
			return d.fail("unexpected end of object")
		}
		if c != '"' {
			return d.fail("expected object key")
		}
		raw, escaped, err := d.scanString()
		if err != nil {
			return err
		}
		key := raw
		var scratch [64]byte
		if escaped {
			var ok bool
			if key, ok = unquoteKey(raw, scratch[:0]); !ok {
				// Key too long for scratch: it cannot match any
				// field, so it is unknown either way.
				return d.fail("unknown field")
			}
		}
		d.skipWS()
		if c, ok := d.peek(); !ok || c != ':' {
			return d.fail("expected ':' after object key")
		}
		d.pos++
		d.skipWS()
		switch {
		case string(key) == "lambda" || foldEqual(key, "LAMBDA"):
			err = d.floatValue(&dst.Lambda)
		case string(key) == "counts" || foldEqual(key, "COUNTS"):
			err = d.intsValue(&dst.Counts)
		default:
			err = d.fail("unknown field")
		}
		if err != nil {
			return err
		}
		d.skipWS()
		c, ok = d.peek()
		switch {
		case !ok:
			return d.fail("unexpected end of object")
		case c == ',':
			d.pos++
			d.skipWS()
		case c == '}':
			d.pos++
			return nil
		default:
			return d.fail("expected ',' or '}' in object")
		}
	}
}

// floatValue decodes a number (or null no-op) into dst.
func (d *decoder) floatValue(dst *float64) error {
	c, ok := d.peek()
	if !ok {
		return d.fail("unexpected end of input")
	}
	if c == 'n' {
		return d.null()
	}
	lit, err := d.scanNumber()
	if err != nil {
		return err
	}
	f, err := strconv.ParseFloat(unsafeString(lit), 64)
	if err != nil {
		// The reference decoder accepts underflow (result rounds to a
		// finite value, e.g. 1e-999 -> 0) and rejects only overflow.
		if !errors.Is(err, strconv.ErrRange) || math.IsInf(f, 0) {
			return d.fail("number out of float64 range")
		}
	}
	*dst = f
	return nil
}

// intsValue decodes an array of ints (or null no-op) into dst with
// element-level merge: a null element keeps the existing value.
func (d *decoder) intsValue(dst *[]int) error {
	c, ok := d.peek()
	if !ok {
		return d.fail("unexpected end of input")
	}
	if c == 'n' {
		// null into a slice zeroes it (json.Decoder sets slices, maps
		// and pointers to nil on null; only non-nilable kinds no-op).
		if err := d.null(); err != nil {
			return err
		}
		*dst = nil
		return nil
	}
	if c != '[' {
		return d.fail("expected array or null")
	}
	d.pos++
	d.skipWS()
	s := *dst
	if c, ok := d.peek(); ok && c == ']' {
		d.pos++
		if s == nil {
			*dst = emptyInts
		} else {
			*dst = s[:0]
		}
		return nil
	}
	i := 0
	for {
		if i >= len(s) {
			s = append(s, 0)
		}
		c, ok := d.peek()
		switch {
		case !ok:
			return d.fail("unexpected end of array")
		case c == 'n':
			if err := d.null(); err != nil {
				return err
			}
		default:
			lit, err := d.scanNumber()
			if err != nil {
				return err
			}
			n, err := strconv.ParseInt(unsafeString(lit), 10, 64)
			if err != nil {
				return d.fail("number is not an int")
			}
			s[i] = int(n)
		}
		i++
		d.skipWS()
		c, ok = d.peek()
		switch {
		case !ok:
			return d.fail("unexpected end of array")
		case c == ',':
			d.pos++
			d.skipWS()
		case c == ']':
			d.pos++
			*dst = s[:i]
			return nil
		default:
			return d.fail("expected ',' or ']' in array")
		}
	}
}

// requestArray decodes [obj, obj, ...] into dst.
func (d *decoder) requestArray(dst *[]PushRequest) error {
	d.pos++ // '['
	d.skipWS()
	s := *dst
	if c, ok := d.peek(); ok && c == ']' {
		d.pos++
		if s == nil {
			*dst = emptyRequests
		} else {
			*dst = s[:0]
		}
		return nil
	}
	i := 0
	for {
		if i >= len(s) {
			s = append(s, PushRequest{})
		}
		c, ok := d.peek()
		switch {
		case !ok:
			return d.fail("unexpected end of array")
		case c == '{':
			if err := d.object(&s[i]); err != nil {
				return err
			}
		case c == 'n':
			if err := d.null(); err != nil {
				return err
			}
		default:
			return d.fail("expected object or null")
		}
		i++
		d.skipWS()
		c, ok = d.peek()
		switch {
		case !ok:
			return d.fail("unexpected end of array")
		case c == ',':
			d.pos++
			d.skipWS()
		case c == ']':
			d.pos++
			*dst = s[:i]
			return nil
		default:
			return d.fail("expected ',' or ']' in array")
		}
	}
}

// scanString validates and consumes the string at d.pos (which must be
// '"'), returning the raw bytes between the quotes and whether they
// contain escapes. Raw control characters and malformed escapes are
// syntax errors; raw invalid UTF-8 is not (the scanner passes any byte
// >= 0x20 through, as encoding/json's does).
func (d *decoder) scanString() (raw []byte, escaped bool, err error) {
	data := d.data
	start := d.pos + 1
	i := start
	for i < len(data) {
		switch c := data[i]; {
		case c == '"':
			d.pos = i + 1
			return data[start:i], escaped, nil
		case c == '\\':
			escaped = true
			i++
			if i >= len(data) {
				d.pos = i
				return nil, false, d.fail("unexpected end of string")
			}
			switch data[i] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i++
			case 'u':
				if i+4 >= len(data) {
					d.pos = len(data)
					return nil, false, d.fail("unexpected end of string")
				}
				for k := 1; k <= 4; k++ {
					if !isHex(data[i+k]) {
						d.pos = i + k
						return nil, false, d.fail("invalid \\u escape")
					}
				}
				i += 5
			default:
				d.pos = i
				return nil, false, d.fail("invalid escape character")
			}
		case c < 0x20:
			d.pos = i
			return nil, false, d.fail("control character in string")
		default:
			i++
		}
	}
	d.pos = len(data)
	return nil, false, d.fail("unexpected end of string")
}

// scanNumber consumes a number per the JSON grammar (stricter than
// strconv: no leading zeros, no hex, no leading '+' or '.') and
// returns its literal bytes.
func (d *decoder) scanNumber() ([]byte, error) {
	data := d.data
	start := d.pos
	i := d.pos
	if i < len(data) && data[i] == '-' {
		i++
	}
	switch {
	case i >= len(data):
		d.pos = i
		return nil, d.fail("invalid number")
	case data[i] == '0':
		i++
	case '1' <= data[i] && data[i] <= '9':
		i++
		for i < len(data) && isDigit(data[i]) {
			i++
		}
	default:
		d.pos = i
		return nil, d.fail("invalid number")
	}
	if i < len(data) && data[i] == '.' {
		i++
		if i >= len(data) || !isDigit(data[i]) {
			d.pos = i
			return nil, d.fail("invalid number")
		}
		for i < len(data) && isDigit(data[i]) {
			i++
		}
	}
	if i < len(data) && (data[i] == 'e' || data[i] == 'E') {
		i++
		if i < len(data) && (data[i] == '+' || data[i] == '-') {
			i++
		}
		if i >= len(data) || !isDigit(data[i]) {
			d.pos = i
			return nil, d.fail("invalid number")
		}
		for i < len(data) && isDigit(data[i]) {
			i++
		}
	}
	d.pos = i
	return data[start:i], nil
}

// unquoteKey decodes the escapes in a raw key into buf, replicating
// encoding/json's unquote: \uXXXX with UTF-16 surrogate pairing, lone
// surrogates replaced by U+FFFD. Syntax was already validated by
// scanString. ok is false if the decoded key outgrows buf's capacity —
// such a key is longer than any field name (folding shrinks a rune's
// encoding at most from 3 bytes to 1) and so matches nothing.
func unquoteKey(raw, buf []byte) (key []byte, ok bool) {
	for i := 0; i < len(raw); {
		if len(buf)+utf8.UTFMax > cap(buf) {
			return nil, false
		}
		if raw[i] != '\\' {
			buf = append(buf, raw[i])
			i++
			continue
		}
		i++
		switch c := raw[i]; c {
		case '"', '\\', '/':
			buf = append(buf, c)
			i++
		case 'b':
			buf = append(buf, '\b')
			i++
		case 'f':
			buf = append(buf, '\f')
			i++
		case 'n':
			buf = append(buf, '\n')
			i++
		case 'r':
			buf = append(buf, '\r')
			i++
		case 't':
			buf = append(buf, '\t')
			i++
		case 'u':
			r := rune(hex4(raw[i+1:]))
			i += 5
			if utf16.IsSurrogate(r) {
				var r2 rune = -1
				if i+5 < len(raw) && raw[i] == '\\' && raw[i+1] == 'u' {
					r2 = rune(hex4(raw[i+2:]))
				}
				if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
					r = dec
					i += 6
				} else {
					r = utf8.RuneError
				}
			}
			buf = utf8.AppendRune(buf, r)
		}
	}
	return buf, true
}

func hex4(b []byte) (v int) {
	for k := 0; k < 4; k++ {
		c := b[k]
		switch {
		case '0' <= c && c <= '9':
			v = v<<4 | int(c-'0')
		case 'a' <= c && c <= 'f':
			v = v<<4 | int(c-'a'+10)
		default:
			v = v<<4 | int(c-'A'+10)
		}
	}
	return v
}

func isHex(c byte) bool {
	return '0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// unsafeString views b as a string for strconv parsing without copying;
// strconv does not retain its argument.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
