package wire

import (
	"math"
	"strconv"
	"unicode/utf8"

	"repro/internal/stream"
)

// The encoder: append-based, allocation-free beyond growing dst, and
// byte-identical to json.Marshal for every supported value (asserted by
// TestEncodeMatchesJSON and FuzzWireCodec). Callers that need
// json.Encoder framing append the trailing '\n' themselves.

const hexDigits = "0123456789abcdef"

// AppendString appends s as a JSON string, replicating encoding/json's
// escaping exactly: \b \f \n \r \t shorthands, \u00XX for the remaining
// control characters, HTML-escaped < > &, the six-character escape
// \ufffd for each invalid UTF-8 byte, and escaped U+2028/U+2029
// (JSONP hazard).
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendFloat appends f in encoding/json's float format: shortest
// round-trip representation, 'f' form for magnitudes in [1e-6, 1e21),
// 'e' form outside with the exponent's leading zero stripped. Non-finite
// floats have no JSON form and report ErrUnsupportedValue, exactly where
// json.Marshal fails.
func AppendFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, ErrUnsupportedValue
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// AppendInt appends v as a JSON number.
func AppendInt(dst []byte, v int64) []byte { return strconv.AppendInt(dst, v, 10) }

// AppendUint appends v as a JSON number.
func AppendUint(dst []byte, v uint64) []byte { return strconv.AppendUint(dst, v, 10) }

// AppendBool appends v as a JSON boolean.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendInts appends a []int as a JSON array (null when nil, matching
// an un-omitempty'd nil slice).
func appendInts(dst []byte, vs []int) []byte {
	if vs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return append(dst, ']')
}

// AppendAdvisory appends one stream.Advisory object, field for field and
// omitempty for omitempty what json.Marshal produces.
func AppendAdvisory(dst []byte, adv *stream.Advisory) ([]byte, error) {
	var err error
	dst = append(dst, `{"slot":`...)
	dst = AppendInt(dst, int64(adv.Slot))
	dst = append(dst, `,"lambda":`...)
	if dst, err = AppendFloat(dst, adv.Lambda); err != nil {
		return dst, err
	}
	dst = append(dst, `,"config":`...)
	dst = appendInts(dst, adv.Config)
	dst = append(dst, `,"active":`...)
	dst = AppendInt(dst, int64(adv.Active))
	dst = append(dst, `,"operating":`...)
	if dst, err = AppendFloat(dst, adv.Operating); err != nil {
		return dst, err
	}
	dst = append(dst, `,"switching":`...)
	if dst, err = AppendFloat(dst, adv.Switching); err != nil {
		return dst, err
	}
	dst = append(dst, `,"cum_cost":`...)
	if dst, err = AppendFloat(dst, adv.CumCost); err != nil {
		return dst, err
	}
	if adv.Opt != 0 {
		dst = append(dst, `,"opt":`...)
		if dst, err = AppendFloat(dst, adv.Opt); err != nil {
			return dst, err
		}
	}
	if adv.Ratio != 0 {
		dst = append(dst, `,"ratio":`...)
		if dst, err = AppendFloat(dst, adv.Ratio); err != nil {
			return dst, err
		}
	}
	if adv.Pending != 0 {
		dst = append(dst, `,"pending":`...)
		dst = AppendInt(dst, int64(adv.Pending))
	}
	return append(dst, '}'), nil
}

// AppendPushResult appends one PushResult object.
func AppendPushResult(dst []byte, res *PushResult) ([]byte, error) {
	dst = append(dst, `{"decided":`...)
	dst = AppendBool(dst, res.Decided)
	if res.Advisory != nil {
		var err error
		dst = append(dst, `,"advisory":`...)
		if dst, err = AppendAdvisory(dst, res.Advisory); err != nil {
			return dst, err
		}
	}
	return append(dst, '}'), nil
}

// AppendPushResults appends a batch response: a JSON array of results
// (null for a nil slice, as json.Marshal encodes it).
func AppendPushResults(dst []byte, res []PushResult) ([]byte, error) {
	if res == nil {
		return append(dst, "null"...), nil
	}
	dst = append(dst, '[')
	for i := range res {
		var err error
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, err = AppendPushResult(dst, &res[i]); err != nil {
			return dst, err
		}
	}
	return append(dst, ']'), nil
}

// AppendError appends the API's error body, {"error":"..."}.
func AppendError(dst []byte, msg string) []byte {
	dst = append(dst, `{"error":`...)
	dst = AppendString(dst, msg)
	return append(dst, '}')
}

// AppendBatchError appends a failed batch push's response: the error
// plus the results of the slots committed before it.
func AppendBatchError(dst []byte, msg string, results []PushResult) ([]byte, error) {
	var err error
	dst = append(dst, `{"error":`...)
	dst = AppendString(dst, msg)
	dst = append(dst, `,"results":`...)
	if dst, err = AppendPushResults(dst, results); err != nil {
		return dst, err
	}
	return append(dst, '}'), nil
}

// AppendPushRequest appends one PushRequest object — the client-side
// encoder (cmd/loadgen reuses one buffer per worker with it).
func AppendPushRequest(dst []byte, req *PushRequest) ([]byte, error) {
	var err error
	dst = append(dst, `{"lambda":`...)
	if dst, err = AppendFloat(dst, req.Lambda); err != nil {
		return dst, err
	}
	if len(req.Counts) > 0 {
		dst = append(dst, `,"counts":`...)
		dst = appendInts(dst, req.Counts)
	}
	return append(dst, '}'), nil
}

// AppendPushRequests appends a batch push request body.
func AppendPushRequests(dst []byte, reqs []PushRequest) ([]byte, error) {
	if reqs == nil {
		return append(dst, "null"...), nil
	}
	dst = append(dst, '[')
	for i := range reqs {
		var err error
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, err = AppendPushRequest(dst, &reqs[i]); err != nil {
			return dst, err
		}
	}
	return append(dst, ']'), nil
}
