package wire

import (
	"unicode"
	"unicode/utf8"
)

// Field-name case folding, replicating encoding/json's fold.go: a key
// matches a field when the folded forms are equal, where folding maps
// ASCII letters to upper case and every other rune to the smallest rune
// in its unicode.SimpleFold cycle (so U+017F LATIN SMALL LETTER LONG S
// folds to 'S' and matches an 's' in a field name, exactly as the
// reflection decoder's byFoldedName lookup does).

// foldEqual reports whether key, folded, equals the pre-folded field
// name. Invalid UTF-8 in key folds to U+FFFD per byte, which can never
// match an ASCII field name — the same no-match outcome encoding/json
// produces.
func foldEqual(key []byte, folded string) bool {
	j := 0
	for i := 0; i < len(key); {
		if c := key[i]; c < utf8.RuneSelf {
			if 'a' <= c && c <= 'z' {
				c -= 'a' - 'A'
			}
			if j >= len(folded) || folded[j] != c {
				return false
			}
			i++
			j++
			continue
		}
		r, n := utf8.DecodeRune(key[i:])
		var buf [utf8.UTFMax]byte
		m := utf8.EncodeRune(buf[:], foldRune(r))
		if j+m > len(folded) || string(buf[:m]) != folded[j:j+m] {
			return false
		}
		i += n
		j += m
	}
	return j == len(folded)
}

// foldRune returns the smallest rune in r's SimpleFold cycle.
func foldRune(r rune) rune {
	for {
		r2 := unicode.SimpleFold(r)
		if r2 <= r {
			return r2
		}
		r = r2
	}
}
