package wire

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/stream"
)

// FuzzWireCodec is the codec's correctness proof: for arbitrary input
// bytes, the wire decoder and the strict reference decoder accept or
// reject identically and produce identical values (both as a single
// request and as a batch); for arbitrary values, the wire encoder
// produces byte-identical output to json.Marshal or fails exactly when
// it fails. Run with `go test -fuzz FuzzWireCodec ./internal/wire`;
// CI replays a short budget against the seeded corpus.
func FuzzWireCodec(f *testing.F) {
	for _, tc := range decodeCases {
		f.Add([]byte(tc), 1.5, "unknown session", 3, true)
	}
	f.Add([]byte(`{"lambda":1e-7,"counts":[-1]}`), 1e-999, "a\x00b<&>\xff", -1, false)
	f.Add([]byte(`[{"Lambda":2}]`), -0.0, "ſ  🚀", 1<<40, true)

	f.Fuzz(func(t *testing.T, data []byte, lambda float64, msg string, pending int, decided bool) {
		checkDecodeParity(t, data)

		// Harvest any successfully decoded counts to vary the encoder
		// inputs beyond what the scalar fuzz args cover.
		var counts []int
		var probe PushRequest
		if err := DecodePushRequest(data, &probe); err == nil {
			counts = probe.Counts
		}

		adv := &stream.Advisory{
			Slot:      pending,
			Lambda:    lambda,
			Config:    counts,
			Active:    pending / 2,
			Operating: lambda * 0.5,
			Switching: -lambda,
			CumCost:   lambda * float64(pending),
			Opt:       lambda - 1,
			Ratio:     lambda / 3,
			Pending:   pending,
		}
		got, err := AppendAdvisory(nil, adv)
		checkEncode(t, "AppendAdvisory", got, err, adv)

		res := PushResult{Decided: decided}
		if decided {
			res.Advisory = adv
		}
		got, err = AppendPushResult(nil, &res)
		checkEncode(t, "AppendPushResult", got, err, res)

		batch := []PushResult{res, {Decided: !decided}}
		got, err = AppendPushResults(nil, batch)
		checkEncode(t, "AppendPushResults", got, err, batch)

		got = AppendError(nil, msg)
		checkEncode(t, "AppendError", got, nil, struct {
			Error string `json:"error"`
		}{msg})

		got, err = AppendBatchError(nil, msg, batch[:1])
		checkEncode(t, "AppendBatchError", got, err, struct {
			Error   string       `json:"error"`
			Results []PushResult `json:"results"`
		}{msg, batch[:1]})

		req := PushRequest{Lambda: lambda, Counts: counts}
		got, err = AppendPushRequest(nil, &req)
		checkEncode(t, "AppendPushRequest", got, err, req)

		// Round-trip: anything the encoder emits, the decoder must
		// accept and reproduce bit-for-bit.
		if err == nil {
			var back PushRequest
			if derr := DecodePushRequest(got, &back); derr != nil {
				t.Fatalf("round-trip decode %q: %v", got, derr)
			}
			reenc, rerr := AppendPushRequest(nil, &back)
			if rerr != nil || !bytes.Equal(reenc, got) {
				t.Fatalf("round-trip re-encode %q -> %q (err=%v)", got, reenc, rerr)
			}
		}

		greqs, err := AppendPushRequests(nil, []PushRequest{req, {}})
		checkEncode(t, "AppendPushRequests", greqs, err, []PushRequest{req, {}})

		// json.Encoder framing: handlers append '\n' after the wire
		// body; confirm the combination matches Encode exactly.
		if err == nil {
			var jbuf bytes.Buffer
			if jerr := json.NewEncoder(&jbuf).Encode([]PushRequest{req, {}}); jerr != nil {
				t.Fatalf("json.Encoder: %v", jerr)
			}
			if !bytes.Equal(append(greqs, '\n'), jbuf.Bytes()) {
				t.Fatalf("framing: wire %q != encoder %q", greqs, jbuf.Bytes())
			}
		}
	})
}
