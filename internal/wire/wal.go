package wire

import "strconv"

// The write-ahead log's slot-record payload codec. internal/wal frames
// these payloads with a length+CRC32C header; the payload itself is the
// same zero-alloc JSON dialect as the push path, so a WAL is both
// greppable on disk and byte-identical to what json.Marshal would
// produce for the same record (asserted by TestWALRecordCodec).

// WALRecord is one logged slot: the absolute 1-based slot index the
// serving layer assigned at append time plus the slot's input. T makes
// replay idempotent — records at or below a snapshot's slot count are
// skipped, so a crash between snapshot save and log compaction cannot
// double-apply a slot.
type WALRecord struct {
	T      int64   `json:"t"`
	Lambda float64 `json:"lambda"`
	Counts []int   `json:"counts,omitempty"`
}

// AppendWALRecord appends rec as a JSON object, byte-identical to
// json.Marshal and allocation-free beyond growing dst.
func AppendWALRecord(dst []byte, rec *WALRecord) ([]byte, error) {
	var err error
	dst = append(dst, `{"t":`...)
	dst = AppendInt(dst, rec.T)
	dst = append(dst, `,"lambda":`...)
	if dst, err = AppendFloat(dst, rec.Lambda); err != nil {
		return dst, err
	}
	if len(rec.Counts) > 0 {
		dst = append(dst, `,"counts":`...)
		dst = appendInts(dst, rec.Counts)
	}
	return append(dst, '}'), nil
}

// DecodeWALRecord decodes one WAL slot payload (or null) into dst with
// the same strict-decoder semantics as DecodePushRequest: unknown
// fields rejected, folded key matching, null no-ops, last key wins.
func DecodeWALRecord(data []byte, dst *WALRecord) error {
	d := decoder{data: data}
	d.skipWS()
	c, ok := d.peek()
	switch {
	case !ok:
		return d.fail("unexpected end of input")
	case c == '{':
		return d.walObject(dst)
	case c == 'n':
		return d.null()
	}
	return d.fail("expected object or null")
}

// walObject decodes {"t":..., "lambda":..., "counts":...} into dst.
func (d *decoder) walObject(dst *WALRecord) error {
	d.pos++ // '{'
	d.skipWS()
	if c, ok := d.peek(); ok && c == '}' {
		d.pos++
		return nil
	}
	for {
		c, ok := d.peek()
		if !ok {
			return d.fail("unexpected end of object")
		}
		if c != '"' {
			return d.fail("expected object key")
		}
		raw, escaped, err := d.scanString()
		if err != nil {
			return err
		}
		key := raw
		var scratch [64]byte
		if escaped {
			var ok bool
			if key, ok = unquoteKey(raw, scratch[:0]); !ok {
				return d.fail("unknown field")
			}
		}
		d.skipWS()
		if c, ok := d.peek(); !ok || c != ':' {
			return d.fail("expected ':' after object key")
		}
		d.pos++
		d.skipWS()
		switch {
		case string(key) == "t" || foldEqual(key, "T"):
			err = d.intValue(&dst.T)
		case string(key) == "lambda" || foldEqual(key, "LAMBDA"):
			err = d.floatValue(&dst.Lambda)
		case string(key) == "counts" || foldEqual(key, "COUNTS"):
			err = d.intsValue(&dst.Counts)
		default:
			err = d.fail("unknown field")
		}
		if err != nil {
			return err
		}
		d.skipWS()
		c, ok = d.peek()
		switch {
		case !ok:
			return d.fail("unexpected end of object")
		case c == ',':
			d.pos++
			d.skipWS()
		case c == '}':
			d.pos++
			return nil
		default:
			return d.fail("expected ',' or '}' in object")
		}
	}
}

// intValue decodes an int64 (or null no-op) into dst, rejecting
// fractions and exponents as the reference decoder does for int fields.
func (d *decoder) intValue(dst *int64) error {
	c, ok := d.peek()
	if !ok {
		return d.fail("unexpected end of input")
	}
	if c == 'n' {
		return d.null()
	}
	lit, err := d.scanNumber()
	if err != nil {
		return err
	}
	n, err := strconv.ParseInt(unsafeString(lit), 10, 64)
	if err != nil {
		return d.fail("number is not an int")
	}
	*dst = n
	return nil
}
