package wire

import (
	"math"
	"reflect"
	"testing"
)

func TestAppendWALRecordMatchesJSON(t *testing.T) {
	recs := []WALRecord{
		{},
		{T: 1, Lambda: 3.5},
		{T: 48, Lambda: 0.3333333333333333, Counts: []int{2, 0, 1}},
		{T: 1 << 40, Lambda: 1e21, Counts: []int{}},
		{T: -7, Lambda: 5e-324, Counts: []int{1}},
		{T: math.MaxInt64, Lambda: -1e-9, Counts: []int{9, 9, 9, 9}},
	}
	for _, rec := range recs {
		got, err := AppendWALRecord(nil, &rec)
		checkEncode(t, "AppendWALRecord", got, err, rec)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := AppendWALRecord(nil, &WALRecord{Lambda: bad}); err == nil {
			t.Fatalf("AppendWALRecord(lambda=%v): expected error", bad)
		}
	}
}

func TestDecodeWALRecordMatchesJSON(t *testing.T) {
	inputs := []string{
		`{}`, `null`, `{"t":3,"lambda":1.5}`,
		`{"t":3,"lambda":1.5,"counts":[4,0,2]}`,
		`{"counts":[],"t":0,"lambda":0}`,
		`{"T":12,"LAMBDA":2.5,"Counts":[1]}`,
		`{"t":5,"lambda":1e2}`,
		`{"t":null,"lambda":null,"counts":null}`,
		`{"t":1,"t":2}`,
		`{"counts":[9],"counts":[null,3]}`,
		`  { "t" : 7 , "lambda" : -0.25 } trailing`,
		`{"t":1.5}`, `{"t":1e3}`, `{"lambda":1e309}`, `{"lambda":1e-999}`,
		`{"t":9223372036854775808}`, `{"t":-9223372036854775808}`,
		`{"unknown":1}`, `{"t":}`, `{"t"`, `{`, ``, `[1]`, `truex`,
		`{"t":01}`, `{"counts":[1,]}`, `{"counts":{"a":1}}`,
	}
	for _, in := range inputs {
		got := WALRecord{T: 99, Lambda: -1, Counts: []int{8, 8}}
		want := got
		gotErr := DecodeWALRecord([]byte(in), &got)
		wantErr := refDecode([]byte(in), &want)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("DecodeWALRecord(%q): wire err=%v, json err=%v", in, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("DecodeWALRecord(%q): wire %+v != json %+v", in, got, want)
		}
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []WALRecord{
		{T: 1, Lambda: 4.5, Counts: []int{3, 1}},
		{T: 2, Lambda: 0},
	}
	for _, rec := range recs {
		buf, err := AppendWALRecord(nil, &rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		var back WALRecord
		if err := DecodeWALRecord(buf, &back); err != nil {
			t.Fatalf("decode %q: %v", buf, err)
		}
		if back.T != rec.T || back.Lambda != rec.Lambda ||
			!reflect.DeepEqual(back.Counts, rec.Counts) {
			t.Fatalf("round trip %+v != %+v", back, rec)
		}
	}
}
