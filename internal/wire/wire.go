// Package wire is the hand-rolled JSON codec of the serving tier's push
// hot path: an append-based encoder and a streaming scanner decoder for
// the wire types that cross the HTTP boundary on every slot
// (PushRequest in, PushResult/stream.Advisory out), with no
// encoding/json and no reflection anywhere on the happy path.
//
// The codec is not "JSON-ish": it is byte-for-byte and accept-for-accept
// compatible with the reflection-based encoding/json code it replaces,
// so the serving layer can switch between the two freely
// (serve.Options.ReflectCodec) and differential tests can assert
// equality instead of mere semantic equivalence. Concretely:
//
//   - Every Append* function produces exactly the bytes json.Marshal
//     produces for the same value (same float formatting, same
//     HTML-escaping of < > &, same � replacement of invalid UTF-8,
//     same omitempty behaviour), or fails with ErrUnsupportedValue in
//     exactly the cases json.Marshal fails (non-finite floats).
//   - Every Decode* function accepts exactly the inputs a strict
//     json.Decoder (DisallowUnknownFields) accepts — including
//     case-folded field names, escaped keys, null no-ops, duplicate
//     keys with json's merge semantics, and ignored trailing data — and
//     decodes them to identical values. FuzzWireCodec hammers both
//     directions against encoding/json.
//
// Decode errors describe the problem but do not replicate
// encoding/json's error prose; callers that must preserve the exact
// reference error texts (the HTTP layer does) re-run the failed input
// through encoding/json — the input is already known to be rejected, so
// the reflection cost is paid only on malformed requests.
package wire

import (
	"errors"

	"repro/internal/stream"
)

// ErrUnsupportedValue reports a value the JSON wire format cannot carry
// (a non-finite float); it mirrors encoding/json's UnsupportedValueError
// cases for the wire types.
var ErrUnsupportedValue = errors.New("wire: unsupported value")

// PushRequest is one slot pushed to a served session: the POST
// /v1/sessions/{id}/push wire format, alone or as an element of a JSON
// array for batch pushes. serve.PushRequest aliases it.
type PushRequest struct {
	// Lambda is the slot's job volume.
	Lambda float64 `json:"lambda"`
	// Counts optionally overrides the fleet sizes for this slot
	// (time-varying data centers, Section 4.3).
	Counts []int `json:"counts,omitempty"`
}

// PushResult is one push's outcome: Decided reports whether the slot
// unlocked an advisory (semi-online algorithms buffer their lookahead
// window first). serve.PushResult aliases it.
type PushResult struct {
	Decided  bool             `json:"decided"`
	Advisory *stream.Advisory `json:"advisory,omitempty"`
}
