// Package workload generates synthetic job-volume traces for experiments.
//
// The paper evaluates nothing empirically; its predecessors (Lin et al.,
// "Dynamic right-sizing for power-proportional data centers") motivated the
// problem with proprietary production traces exhibiting diurnal
// periodicity, bursts and idle troughs. This package provides seeded,
// deterministic generators for the same shape families so experiments are
// reproducible without the original data:
//
//   - Diurnal: sinusoidal day/night pattern with configurable
//     peak-to-mean ratio, optionally noisy.
//   - Bursty: a base load with random multiplicative spikes.
//   - Steps: piecewise-constant regimes.
//   - RandomWalk: bounded mean-reverting wandering load.
//   - OnOff: adversarial alternation, the shape driving lower-bound
//     instances (a server powered up is soon useless, then needed again).
//
// All generators return non-negative volumes and never exceed the given
// capacity bound, so instances built from them validate.
package workload

import (
	"math"
	"math/rand"
)

// Diurnal returns a T-slot sinusoidal trace oscillating between base and
// peak with the given period (slots per "day") and phase (radians).
// Capacity planning convention: peak is the maximum volume generated.
func Diurnal(T int, base, peak float64, period int, phase float64) []float64 {
	if T < 0 || period <= 0 || base < 0 || peak < base {
		panic("workload: invalid diurnal parameters")
	}
	out := make([]float64, T)
	mid := (base + peak) / 2
	amp := (peak - base) / 2
	for t := range out {
		out[t] = mid + amp*math.Sin(2*math.Pi*float64(t)/float64(period)+phase)
	}
	return out
}

// DiurnalNoisy adds i.i.d. uniform noise of half-width noise·amplitude to
// a diurnal trace, clamped to [0, peak].
func DiurnalNoisy(rng *rand.Rand, T int, base, peak float64, period int, noise float64) []float64 {
	out := Diurnal(T, base, peak, period, 0)
	amp := (peak - base) / 2
	for t := range out {
		out[t] += (rng.Float64()*2 - 1) * noise * amp
		if out[t] < 0 {
			out[t] = 0
		}
		if out[t] > peak {
			out[t] = peak
		}
	}
	return out
}

// Bursty returns a base-load trace where each slot independently spikes to
// burstHeight with probability burstProb.
func Bursty(rng *rand.Rand, T int, base, burstHeight, burstProb float64) []float64 {
	if T < 0 || base < 0 || burstHeight < base || burstProb < 0 || burstProb > 1 {
		panic("workload: invalid bursty parameters")
	}
	out := make([]float64, T)
	for t := range out {
		out[t] = base
		if rng.Float64() < burstProb {
			out[t] = burstHeight
		}
	}
	return out
}

// Steps cycles through the given load levels, holding each for dwell
// slots, for a total of T slots.
func Steps(T int, levels []float64, dwell int) []float64 {
	if T < 0 || len(levels) == 0 || dwell <= 0 {
		panic("workload: invalid step parameters")
	}
	for _, l := range levels {
		if l < 0 {
			panic("workload: negative level")
		}
	}
	out := make([]float64, T)
	for t := range out {
		out[t] = levels[(t/dwell)%len(levels)]
	}
	return out
}

// RandomWalk returns a mean-reverting bounded random walk in [min, max]
// starting at start with per-slot step size step.
func RandomWalk(rng *rand.Rand, T int, start, step, min, max float64) []float64 {
	if T < 0 || min > max || start < min || start > max || step < 0 {
		panic("workload: invalid random-walk parameters")
	}
	out := make([]float64, T)
	v := start
	mid := (min + max) / 2
	for t := range out {
		drift := 0.0
		if v > mid {
			drift = -0.1 * step
		} else if v < mid {
			drift = 0.1 * step
		}
		v += (rng.Float64()*2-1)*step + drift
		if v < min {
			v = min
		}
		if v > max {
			v = max
		}
		out[t] = v
	}
	return out
}

// OnOff alternates onLen slots of volume `on` with offLen slots of volume
// `off`, starting with an on-phase. With off = 0 and onLen = 1 it is the
// adversarial shape behind the 2d lower bound of [Albers–Quedenfeld,
// CIAC 2021]: demand vanishes right after every power-up.
func OnOff(T int, on, off float64, onLen, offLen int) []float64 {
	if T < 0 || on < 0 || off < 0 || onLen <= 0 || offLen <= 0 {
		panic("workload: invalid on/off parameters")
	}
	out := make([]float64, T)
	cycle := onLen + offLen
	for t := range out {
		if t%cycle < onLen {
			out[t] = on
		} else {
			out[t] = off
		}
	}
	return out
}

// Scale multiplies a trace by factor (>= 0), returning a new slice.
func Scale(xs []float64, factor float64) []float64 {
	if factor < 0 {
		panic("workload: negative scale factor")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * factor
	}
	return out
}

// Add sums traces pointwise; all must share the same length.
func Add(traces ...[]float64) []float64 {
	if len(traces) == 0 {
		return nil
	}
	n := len(traces[0])
	out := make([]float64, n)
	for _, tr := range traces {
		if len(tr) != n {
			panic("workload: trace length mismatch")
		}
		for i, x := range tr {
			out[i] += x
		}
	}
	return out
}

// Clamp limits every entry to [0, max], returning a new slice.
func Clamp(xs []float64, max float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		switch {
		case x < 0:
			out[i] = 0
		case x > max:
			out[i] = max
		default:
			out[i] = x
		}
	}
	return out
}

// Stats summarises a trace.
type Stats struct {
	Min, Max, Mean, PeakToMean float64
}

// Summarize computes trace statistics; empty traces return zeros.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if s.Mean > 0 {
		s.PeakToMean = s.Max / s.Mean
	}
	return s
}
