package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiurnalShape(t *testing.T) {
	tr := Diurnal(48, 2, 10, 24, 0)
	if len(tr) != 48 {
		t.Fatalf("len = %d", len(tr))
	}
	s := Summarize(tr)
	if s.Min < 2-1e-9 || s.Max > 10+1e-9 {
		t.Errorf("range [%g, %g] outside [2, 10]", s.Min, s.Max)
	}
	if math.Abs(s.Mean-6) > 0.5 {
		t.Errorf("mean = %g, want ≈ 6", s.Mean)
	}
	// Periodicity: slot t and t+24 agree.
	for i := 0; i < 24; i++ {
		if math.Abs(tr[i]-tr[i+24]) > 1e-9 {
			t.Fatalf("not periodic at %d", i)
		}
	}
}

func TestDiurnalPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Diurnal(-1, 0, 1, 24, 0) },
		func() { Diurnal(10, 0, 1, 0, 0) },
		func() { Diurnal(10, -1, 1, 24, 0) },
		func() { Diurnal(10, 5, 1, 24, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDiurnalNoisyBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := DiurnalNoisy(rng, 200, 1, 9, 24, 0.5)
	for i, v := range tr {
		if v < 0 || v > 9 {
			t.Fatalf("slot %d: %g outside [0, 9]", i, v)
		}
	}
}

func TestBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := Bursty(rng, 1000, 1, 8, 0.2)
	bursts := 0
	for _, v := range tr {
		switch v {
		case 1:
		case 8:
			bursts++
		default:
			t.Fatalf("unexpected level %g", v)
		}
	}
	if bursts < 120 || bursts > 280 {
		t.Errorf("burst count %d far from expectation 200", bursts)
	}
}

func TestSteps(t *testing.T) {
	tr := Steps(10, []float64{1, 5}, 3)
	want := []float64{1, 1, 1, 5, 5, 5, 1, 1, 1, 5}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("tr = %v, want %v", tr, want)
		}
	}
}

func TestRandomWalkBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := RandomWalk(rng, 5000, 5, 1, 2, 8)
	for i, v := range tr {
		if v < 2 || v > 8 {
			t.Fatalf("slot %d: %g outside [2, 8]", i, v)
		}
	}
	s := Summarize(tr)
	if s.Mean < 3 || s.Mean > 7 {
		t.Errorf("mean-reversion failed: mean %g", s.Mean)
	}
}

func TestOnOff(t *testing.T) {
	tr := OnOff(7, 4, 1, 2, 3)
	want := []float64{4, 4, 1, 1, 1, 4, 4}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("tr = %v, want %v", tr, want)
		}
	}
}

func TestCombinators(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	sum := Add(a, b)
	for i, want := range []float64{5, 7, 9} {
		if sum[i] != want {
			t.Fatalf("Add = %v", sum)
		}
	}
	sc := Scale(a, 2)
	if sc[2] != 6 {
		t.Errorf("Scale = %v", sc)
	}
	cl := Clamp([]float64{-1, 5, 99}, 10)
	if cl[0] != 0 || cl[1] != 5 || cl[2] != 10 {
		t.Errorf("Clamp = %v", cl)
	}
	if Add() != nil {
		t.Error("empty Add should be nil")
	}
}

func TestCombinatorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Scale(nil, -1) },
		func() { Add([]float64{1}, []float64{1, 2}) },
		func() { Steps(5, nil, 1) },
		func() { OnOff(5, 1, 1, 0, 1) },
		func() { Bursty(rand.New(rand.NewSource(1)), 5, 2, 1, 0.5) },
		func() { RandomWalk(rand.New(rand.NewSource(1)), 5, 9, 1, 0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Mean != 0 || s.PeakToMean != 0 {
		t.Error("empty summary should be zero")
	}
}

// Property: all generators produce non-negative traces of the right length.
func TestGeneratorsNonNegativeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := rng.Intn(300)
		traces := [][]float64{
			Diurnal(T, rng.Float64(), 1+rng.Float64()*9, 1+rng.Intn(48), rng.Float64()*6),
			DiurnalNoisy(rng, T, rng.Float64(), 1+rng.Float64()*9, 1+rng.Intn(48), rng.Float64()),
			Bursty(rng, T, rng.Float64(), 1+rng.Float64()*9, rng.Float64()),
			Steps(T, []float64{rng.Float64(), rng.Float64() * 5}, 1+rng.Intn(5)),
			OnOff(T, rng.Float64()*5, rng.Float64(), 1+rng.Intn(4), 1+rng.Intn(4)),
		}
		for _, tr := range traces {
			if len(tr) != T {
				return false
			}
			for _, v := range tr {
				if v < 0 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Determinism: the same seed yields the same trace.
func TestGeneratorsDeterministic(t *testing.T) {
	a := Bursty(rand.New(rand.NewSource(42)), 100, 1, 5, 0.3)
	b := Bursty(rand.New(rand.NewSource(42)), 100, 1, 5, 0.3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the trace")
		}
	}
}
