package rightsizing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Cross-cutting structural invariants of the whole system, checked on
// random instances through the public API.

func randomPublicInstance(rng *rand.Rand) *Instance {
	d := 1 + rng.Intn(2)
	T := 2 + rng.Intn(6)
	types := make([]ServerType, d)
	totalCap := 0.0
	for j := range types {
		count := 1 + rng.Intn(3)
		capacity := 0.5 + rng.Float64()*2
		var f CostFunc
		switch rng.Intn(3) {
		case 0:
			f = Constant{C: 0.2 + rng.Float64()*2}
		case 1:
			f = Affine{Idle: 0.2 + rng.Float64(), Rate: rng.Float64() * 2}
		default:
			f = Power{Idle: 0.2 + rng.Float64(), Coef: 0.2 + rng.Float64(), Exp: 1 + rng.Float64()*2}
		}
		types[j] = ServerType{
			Count: count, SwitchCost: 0.5 + rng.Float64()*5, MaxLoad: capacity,
			Cost: Static{F: f},
		}
		totalCap += float64(count) * capacity
	}
	lambda := make([]float64, T)
	for t := range lambda {
		lambda[t] = rng.Float64() * totalCap * 0.85
	}
	return &Instance{Types: types, Lambda: lambda}
}

// OPT is monotone: pointwise-increased demand cannot make the optimum
// cheaper (more work to do, same prices).
func TestOptMonotoneInDemand(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomPublicInstance(rng)
		base, err := OptimalCost(ins)
		if err != nil {
			return false
		}
		// Scale every demand up by a factor <= remaining headroom.
		heavier := &Instance{Types: ins.Types, Lambda: make([]float64, ins.T())}
		for i, l := range ins.Lambda {
			heavier.Lambda[i] = l * (1 + rng.Float64()*0.15)
		}
		if heavier.Validate() != nil {
			return true // scaled past capacity; skip
		}
		heavy, err := OptimalCost(heavier)
		if err != nil {
			return true
		}
		return heavy >= base-1e-9*(1+base)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Prefix optima are monotone in the horizon: C(Î_t) is non-decreasing in
// t (costs are non-negative, and any schedule for I_t restricts to one
// for I_{t-1}).
func TestPrefixOptimaMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomPublicInstance(rng)
		tr, err := NewPrefixTracker(ins, SolveOptions{})
		if err != nil {
			return false
		}
		prev := 0.0
		for !tr.Done() {
			_, v := tr.Advance()
			if v < prev-1e-9*(1+prev) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Scale invariance: multiplying every β_j and every cost function by α
// multiplies every algorithm's total cost by α and leaves Algorithm A's
// schedule unchanged (its decisions depend only on cost ratios).
func TestCostScaleInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomPublicInstance(rng)
		alpha := 0.5 + rng.Float64()*4

		scaled := &Instance{Lambda: ins.Lambda}
		for _, st := range ins.Types {
			base := st.Cost.(Static).F
			scaled.Types = append(scaled.Types, ServerType{
				Count:      st.Count,
				SwitchCost: st.SwitchCost * alpha,
				MaxLoad:    st.MaxLoad,
				Cost:       Static{F: Scaled{F: base, Factor: alpha}},
			})
		}

		a1, err := NewAlgorithmA(ins.Types)
		if err != nil {
			return false
		}
		a2, err := NewAlgorithmA(scaled.Types)
		if err != nil {
			return false
		}
		s1 := Run(a1, ins)
		s2 := Run(a2, scaled)
		for i := range s1 {
			if !s1[i].Equal(s2[i]) {
				return false
			}
		}
		c1 := NewEvaluator(ins).Cost(s1).Total()
		c2 := NewEvaluator(scaled).Cost(s2).Total()
		return math.Abs(c2-alpha*c1) <= 1e-6*(1+alpha*c1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The approximation and fractional solvers bracket the discrete optimum:
// fractional <= OPT <= approx <= (1+eps)·OPT.
func TestSolverBracketing(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomPublicInstance(rng)
		opt, err := OptimalCost(ins)
		if err != nil {
			return false
		}
		apx, err := SolveApprox(ins, 1)
		if err != nil {
			return false
		}
		frac, err := SolveFractional(ins, 2, 0)
		if err != nil {
			return false
		}
		// The fractional solve evaluates g through K-scaled cost
		// functions, so its water-filling follows a different bisection
		// trajectory; tolerate the resulting ~1e-8 relative noise.
		tolr := 1e-6 * (1 + opt)
		return frac.Cost <= opt+tolr &&
			opt <= apx.Cost()+tolr &&
			apx.Cost() <= 2*opt+tolr
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Online algorithms are deterministic: running twice yields identical
// schedules.
func TestOnlineDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		ins := randomPublicInstance(rng)
		a1, _ := NewAlgorithmA(ins.Types)
		a2, _ := NewAlgorithmA(ins.Types)
		s1, s2 := Run(a1, ins), Run(a2, ins)
		for t2 := range s1 {
			if !s1[t2].Equal(s2[t2]) {
				t.Fatalf("case %d: Algorithm A non-deterministic", i)
			}
		}
	}
}

// The scaled-tracker variant stays feasible and within a loose multiple
// of the exact variant.
func TestScaledTrackerVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		ins := randomPublicInstance(rng)
		exact, err := NewAlgorithmA(ins.Types)
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := NewAlgorithmAWithOptions(ins.Types, AlgorithmOptions{TrackerGamma: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		se := Run(exact, ins)
		ss := Run(scaled, ins)
		if err := ins.Feasible(ss); err != nil {
			t.Fatalf("case %d: scaled variant infeasible: %v", i, err)
		}
		ce := NewEvaluator(ins).Cost(se).Total()
		cs := NewEvaluator(ins).Cost(ss).Total()
		if cs > 4*ce {
			t.Errorf("case %d: scaled variant cost %g far above exact %g", i, cs, ce)
		}
	}
}
