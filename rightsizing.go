// Package rightsizing implements the algorithms of Albers & Quedenfeld,
// "Algorithms for Right-Sizing Heterogeneous Data Centers" (SPAA 2021):
// online and offline right-sizing of a data center with d heterogeneous
// server types, integral (truly feasible) server counts, convex
// load-dependent operating costs and per-type switching costs.
//
// # Model
//
// An Instance describes the data center: for each type j, the fleet size
// m_j, the power-up cost β_j, the per-server capacity zmax_j, and a
// per-slot convex operating-cost function f_{t,j}(z). At every time slot a
// job volume λ_t arrives and is split across the active servers; the slot
// cost g_t(x) is the cheapest such split (computed internally by exact
// water-filling). Schedules pay β_j per server powered up.
//
// # Offline
//
//   - SolveOptimal: exact optimum via the paper's graph/DP (Section 4.1).
//   - SolveApprox: (1+ε)-approximation on the γ-reduced configuration
//     lattice, γ = 1+ε/2, in time O(T·ε^{-d}·Π_j log m_j) (Section 4.2).
//     Both support time-varying fleet sizes (Section 4.3) via
//     Instance.Counts.
//
// # Online
//
//   - NewAlgorithmA: (2d+1)-competitive for time-independent costs
//     (Section 2); 2d-competitive when costs are also load-independent.
//   - NewAlgorithmB: (2d+1+c(I))-competitive for time-dependent costs
//     (Section 3.1).
//   - NewAlgorithmC: (2d+1+ε)-competitive for time-dependent costs via
//     sub-slot subdivision (Section 3.2).
//
// Baselines (AllOn, LoadTracking, SkiRental, LCP, RecedingHorizon),
// workload generators and a measurement harness support experiments; see
// EXPERIMENTS.md in the repository for the reproduction study.
//
// # Streaming
//
// The online algorithms are push-based: they are constructed from the
// fleet template alone and receive each slot's demand, cost functions and
// fleet counts through Step as they arrive (SlotInput), so the online
// information model holds by construction. Run replays a recorded
// instance through the same path; NewSession/OpenSession manage a live
// advisory loop with running cost/ratio telemetry and checkpoint/resume.
//
// # Quickstart
//
//	ins := &rightsizing.Instance{
//		Types: []rightsizing.ServerType{{
//			Name: "cpu", Count: 16, SwitchCost: 3, MaxLoad: 1,
//			Cost: rightsizing.Static{F: rightsizing.Affine{Idle: 1, Rate: 1}},
//		}},
//		Lambda: rightsizing.Diurnal(48, 1, 14, 24, 0),
//	}
//	opt, err := rightsizing.SolveOptimal(ins)
//	...
//	alg, err := rightsizing.NewAlgorithmA(ins.Types)
//	sched := rightsizing.Run(alg, ins)
package rightsizing

import (
	"io"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/costfn"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/stream"
	"repro/internal/workload"
)

// ---------- model ----------

// Instance is a problem instance I = (T, d, m, β, F, Λ); see
// internal/model for field semantics. Time slots are 1-based; Lambda[t-1]
// is slot t's job volume, and the optional Counts[t-1][j] makes fleet
// sizes time-dependent (Section 4.3).
type Instance = model.Instance

// ServerType describes one heterogeneous server type.
type ServerType = model.ServerType

// Config is a server configuration: active servers per type.
type Config = model.Config

// Schedule is a sequence of configurations, one per time slot.
type Schedule = model.Schedule

// CostBreakdown splits a schedule's cost into operating and switching
// parts.
type CostBreakdown = model.CostBreakdown

// Evaluator computes operating costs g_t(x) and schedule costs.
type Evaluator = model.Evaluator

// CostProfile yields the operating-cost function of a type per slot.
type CostProfile = model.CostProfile

// Static is a time-independent cost profile (required by Algorithm A).
type Static = model.Static

// Varying is a per-slot cost profile.
type Varying = model.Varying

// Modulated scales a base cost function by a per-slot factor (electricity
// price signals).
type Modulated = model.Modulated

// NewEvaluator returns a cost evaluator for the instance (not safe for
// concurrent use; create one per goroutine).
func NewEvaluator(ins *Instance) *Evaluator { return model.NewEvaluator(ins) }

// ---------- cost functions ----------

// CostFunc is a per-server operating-cost function of the load; it must be
// convex, non-decreasing and non-negative.
type CostFunc = costfn.Func

// Constant is the load-independent cost f(z) = C.
type Constant = costfn.Constant

// Affine is f(z) = Idle + Rate·z.
type Affine = costfn.Affine

// Power is f(z) = Idle + Coef·z^Exp (Exp >= 1).
type Power = costfn.Power

// PiecewiseLinear is a convex piecewise-linear cost curve.
type PiecewiseLinear = costfn.PiecewiseLinear

// Scaled multiplies an underlying cost function by a positive factor.
type Scaled = costfn.Scaled

// NewPiecewiseLinear validates and builds a piecewise-linear cost curve
// from breakpoints (z_i, v_i); see costfn.NewPiecewiseLinear.
func NewPiecewiseLinear(zs, vs []float64) (PiecewiseLinear, error) {
	return costfn.NewPiecewiseLinear(zs, vs)
}

// ---------- offline solvers ----------

// SolveResult is an offline solver's output.
type SolveResult = solver.Result

// SolveOptions controls Solve (lattice choice, reference transition).
type SolveOptions = solver.Options

// SolveOptimal computes an optimal schedule (Section 4.1).
func SolveOptimal(ins *Instance) (*SolveResult, error) { return solver.SolveOptimal(ins) }

// SolveApprox computes a (1+ε)-approximation (Theorem 21).
func SolveApprox(ins *Instance, eps float64) (*SolveResult, error) {
	return solver.SolveApprox(ins, eps)
}

// Solve runs the offline DP with explicit options.
func Solve(ins *Instance, opts SolveOptions) (*SolveResult, error) { return solver.Solve(ins, opts) }

// OptimalCost returns the optimal total cost without materialising a
// schedule (memory O(|M|) instead of O(T·|M|)).
func OptimalCost(ins *Instance) (float64, error) { return solver.OptimalCost(ins) }

// PrefixTracker incrementally tracks optima of growing prefix instances;
// it powers the online algorithms and is exported for instrumentation.
type PrefixTracker = solver.PrefixTracker

// NewPrefixTracker creates a tracker; see solver.NewPrefixTracker.
func NewPrefixTracker(ins *Instance, opts SolveOptions) (*PrefixTracker, error) {
	return solver.NewPrefixTracker(ins, opts)
}

// ---------- online algorithms (the paper's contribution) ----------

// Online is a deterministic push-based online right-sizing algorithm: it
// receives one SlotInput per slot and returns the configuration to run.
type Online = core.Online

// Buffered is the optional interface of semi-online algorithms whose
// decisions lag their inputs (RecedingHorizon/Lookahead); drivers Flush
// once the stream ends.
type Buffered = core.Buffered

// SlotInput is one slot's observable data: index, demand, cost functions
// and fleet counts.
type SlotInput = model.SlotInput

// Run replays a recorded instance through an online algorithm — the batch
// facade over the streaming Step path — and collects the schedule.
func Run(a Online, ins *Instance) Schedule { return core.Run(a, ins) }

// AlgorithmA is the (2d+1)-competitive algorithm for time-independent
// costs (Section 2).
type AlgorithmA = core.AlgorithmA

// AlgorithmB is the (2d+1+c(I))-competitive algorithm for time-dependent
// costs (Section 3.1).
type AlgorithmB = core.AlgorithmB

// AlgorithmC is the (2d+1+ε)-competitive algorithm for time-dependent
// costs (Section 3.2).
type AlgorithmC = core.AlgorithmC

// NewAlgorithmA prepares Algorithm A for a fleet template; every type
// must carry a Static cost profile.
func NewAlgorithmA(types []ServerType) (*AlgorithmA, error) { return core.NewAlgorithmA(types) }

// NewAlgorithmB prepares Algorithm B for a fleet template.
func NewAlgorithmB(types []ServerType) (*AlgorithmB, error) { return core.NewAlgorithmB(types) }

// NewAlgorithmC prepares Algorithm C with accuracy ε > 0; it requires
// β_j > 0 for every type.
func NewAlgorithmC(types []ServerType, eps float64) (*AlgorithmC, error) {
	return core.NewAlgorithmC(types, eps)
}

// CI returns the instance constant c(I) = Σ_j max_t f_{t,j}(0)/β_j of
// Theorem 13.
func CI(ins *Instance) float64 { return core.CI(ins) }

// RatioBoundA returns Theorem 8's competitive bound 2d+1.
func RatioBoundA(ins *Instance) float64 { return core.RatioBoundA(ins) }

// RatioBoundB returns Theorem 13's competitive bound 2d+1+c(I).
func RatioBoundB(ins *Instance) float64 { return core.RatioBoundB(ins) }

// ---------- baselines ----------

// NewAllOn keeps the whole fleet powered (static provisioning).
func NewAllOn(types []ServerType) (Online, error) { return baseline.NewAllOn(types) }

// NewLoadTracking follows the per-slot operating-cost optimum, ignoring
// switching costs.
func NewLoadTracking(types []ServerType) (Online, error) { return baseline.NewLoadTracking(types) }

// NewSkiRental follows load upward immediately and releases surplus
// servers after their idle cost exceeds β_j.
func NewSkiRental(types []ServerType) (Online, error) { return baseline.NewSkiRental(types) }

// NewLCP is discrete lazy capacity provisioning (homogeneous d = 1 only).
func NewLCP(types []ServerType) (Online, error) { return baseline.NewLCP(types) }

// NewLookahead is receding-horizon control recast as a buffering
// semi-online wrapper: the advisory for slot t is emitted once slots
// t..t+w-1 have been ingested (Buffered interface).
func NewLookahead(types []ServerType, w int) (Online, error) {
	return baseline.NewLookahead(types, w)
}

// ---------- workloads ----------

// Diurnal generates a sinusoidal day/night trace; see workload.Diurnal.
func Diurnal(T int, base, peak float64, period int, phase float64) []float64 {
	return workload.Diurnal(T, base, peak, period, phase)
}

// Steps cycles through load levels with the given dwell time.
func Steps(T int, levels []float64, dwell int) []float64 {
	return workload.Steps(T, levels, dwell)
}

// OnOff alternates high and low demand phases (adversarial shape).
func OnOff(T int, on, off float64, onLen, offLen int) []float64 {
	return workload.OnOff(T, on, off, onLen, offLen)
}

// DiurnalNoisy is Diurnal with uniform noise, seeded by rng.
func DiurnalNoisy(rng *rand.Rand, T int, base, peak float64, period int, noise float64) []float64 {
	return workload.DiurnalNoisy(rng, T, base, peak, period, noise)
}

// Bursty is a base load with random spikes, seeded by rng.
func Bursty(rng *rand.Rand, T int, base, burstHeight, burstProb float64) []float64 {
	return workload.Bursty(rng, T, base, burstHeight, burstProb)
}

// RandomWalk is a bounded mean-reverting random walk, seeded by rng.
func RandomWalk(rng *rand.Rand, T int, start, step, min, max float64) []float64 {
	return workload.RandomWalk(rng, T, start, step, min, max)
}

// ---------- measurement ----------

// Metrics summarises an algorithm's behaviour on an instance.
type Metrics = engine.Metrics

// Comparison accumulates metrics for several algorithms against the exact
// optimum.
type Comparison = engine.Comparison

// Table is an aligned text-table builder.
type Table = engine.Table

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return engine.NewTable(headers...) }

// NewComparison solves the instance optimally and seeds the comparison.
func NewComparison(ins *Instance) (*Comparison, error) { return engine.NewComparison(ins) }

// Measure evaluates a schedule; opt > 0 fills the competitive Ratio.
func Measure(ins *Instance, sched Schedule, name string, opt float64) Metrics {
	return engine.Measure(ins, sched, name, opt)
}

// ---------- scenario engine ----------

// Scenario is a named, reproducible workload: an instance generator plus
// the algorithms to run on it (see internal/engine).
type Scenario = engine.Scenario

// AlgSpec describes one algorithm of a scenario: name, schedule producer
// and applicability gate.
type AlgSpec = engine.AlgSpec

// SuiteOptions controls a suite run (worker count, seed, schedule
// retention).
type SuiteOptions = engine.SuiteOptions

// SuiteResult is the outcome of a whole suite run.
type SuiteResult = engine.SuiteResult

// ScenarioResult is one scenario's outcome: the optimum plus one metrics
// row per algorithm.
type ScenarioResult = engine.Result

// ResultSink renders a suite result stream (text, JSON, CSV, markdown).
type ResultSink = engine.Sink

// Scenarios returns every registered scenario sorted by name. The stock
// library covers diurnal, bursty, on/off, random-walk, heterogeneous,
// maintenance (time-varying fleets) and price-modulated workloads.
func Scenarios() []Scenario { return engine.Scenarios() }

// LookupScenario retrieves a registered scenario by name.
func LookupScenario(name string) (Scenario, bool) { return engine.Lookup(name) }

// RegisterScenario adds a scenario to the registry; new workloads are one
// struct literal, not a new main.go.
func RegisterScenario(sc Scenario) error { return engine.Register(sc) }

// EvaluateScenario runs one scenario: it solves the optimum exactly once,
// then runs and measures every applicable algorithm.
func EvaluateScenario(sc Scenario, seed int64) (ScenarioResult, error) {
	return engine.Evaluate(sc, seed, false)
}

// RunSuite fans scenarios × algorithms out over a bounded worker pool;
// results are bit-identical for any worker count.
func RunSuite(scenarios []Scenario, opts SuiteOptions) (*SuiteResult, error) {
	return engine.RunSuite(scenarios, opts)
}

// NewSink returns the result sink for a format name: "text", "json",
// "csv" or "markdown".
func NewSink(format string) (ResultSink, error) { return engine.SinkFor(format) }

// EmitSuite renders a suite result in the given format.
func EmitSuite(w io.Writer, res *SuiteResult, format string) error {
	sink, err := engine.SinkFor(format)
	if err != nil {
		return err
	}
	return sink.Emit(w, res)
}

// DefaultAlgorithms is the standard scenario line-up: Algorithms A, B, C
// plus every baseline, with per-instance applicability gates.
func DefaultAlgorithms() []AlgSpec { return engine.DefaultAlgorithms() }

// OnlineSpec wraps a push-based Online constructor as a scenario
// algorithm.
func OnlineSpec(name string, mk func(types []ServerType) (Online, error)) AlgSpec {
	return engine.OnlineSpec(name, mk)
}

// ---------- algorithm registry ----------

// RegisterAlgorithm adds an algorithm to the registry, making it available
// to scenarios, the CLI (-alg), live sessions and LookupAlgorithm.
func RegisterAlgorithm(s AlgSpec) error { return engine.RegisterAlgorithm(s) }

// LookupAlgorithm resolves a registered algorithm by key, display name or
// any normalisation-equivalent spelling ("algA" finds "alg-a").
func LookupAlgorithm(name string) (AlgSpec, bool) { return engine.LookupAlgorithm(name) }

// Algorithms returns every registered algorithm in registration order.
func Algorithms() []AlgSpec { return engine.Algorithms() }

// AlgorithmCSpec, ApproxSpec and LookaheadSpec parameterise the stock
// registry entries with custom ε / lookahead values for one-off line-ups.
func AlgorithmCSpec(eps float64) AlgSpec { return engine.AlgorithmCSpec(eps) }
func ApproxSpec(eps float64) AlgSpec     { return engine.ApproxSpec(eps) }
func LookaheadSpec(w int) AlgSpec        { return engine.LookaheadSpec(w) }

// ---------- live advisory sessions ----------

// Session manages a live advisory loop over any online algorithm: feed
// demand, get back the configuration to run plus running cost and
// competitive-ratio telemetry, checkpoint and resume at any slot.
type Session = stream.Session

// Advisory is one slot's decision plus telemetry.
type Advisory = stream.Advisory

// SessionOptions tunes a session (telemetry tracker on by default).
type SessionOptions = stream.Options

// SessionCheckpoint is a session's replayable input log.
type SessionCheckpoint = stream.Checkpoint

// NewSession opens a session for an explicitly constructed algorithm.
func NewSession(alg Online, types []ServerType, opts SessionOptions) (*Session, error) {
	return stream.New(alg, types, opts)
}

// OpenSession resolves a registered algorithm by name and opens a session.
func OpenSession(name string, types []ServerType, opts SessionOptions) (*Session, error) {
	return engine.OpenSession(name, types, opts)
}

// ResumeSession rebuilds a session from a checkpoint by replaying its log
// into a freshly resolved algorithm. It resolves through the registry, so
// it reconstructs the original algorithm only for checkpoints taken from
// registry-opened sessions (OpenSession); sessions around hand-constructed
// algorithms should resume in-process via NewSession + the stream
// package's Resume with an identically-constructed algorithm.
func ResumeSession(cp *SessionCheckpoint, types []ServerType, opts SessionOptions) (*Session, error) {
	return engine.ResumeSession(cp, types, opts)
}
