package rightsizing

import (
	"math"
	"testing"
)

// twoType is the public-API analogue of the paper's intro example: a slow
// CPU-like type and a fast GPU-like type with four times the capacity.
func twoType() *Instance {
	return &Instance{
		Types: []ServerType{
			{Name: "slow", Count: 4, SwitchCost: 2, MaxLoad: 1,
				Cost: Static{F: Affine{Idle: 1, Rate: 1}}},
			{Name: "fast", Count: 2, SwitchCost: 8, MaxLoad: 4,
				Cost: Static{F: Power{Idle: 3, Coef: 0.5, Exp: 2}}},
		},
		Lambda: Diurnal(24, 1, 9, 12, 0),
	}
}

func TestPublicOfflinePipeline(t *testing.T) {
	ins := twoType()
	opt, err := SolveOptimal(ins)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(opt.Schedule); err != nil {
		t.Fatal(err)
	}
	apx, err := SolveApprox(ins, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if apx.Cost() < opt.Cost()-1e-9 || apx.Cost() > 1.5*opt.Cost()+1e-9 {
		t.Errorf("approx %g outside [opt, 1.5·opt] for opt %g", apx.Cost(), opt.Cost())
	}
	c, err := OptimalCost(ins)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-opt.Cost()) > 1e-9 {
		t.Errorf("OptimalCost %g != SolveOptimal %g", c, opt.Cost())
	}
}

func TestPublicOnlinePipeline(t *testing.T) {
	ins := twoType()
	a, err := NewAlgorithmA(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	sched := Run(a, ins)
	if err := ins.Feasible(sched); err != nil {
		t.Fatal(err)
	}
	opt, _ := OptimalCost(ins)
	cost := NewEvaluator(ins).Cost(sched).Total()
	if cost > RatioBoundA(ins)*opt*(1+1e-9) {
		t.Errorf("Algorithm A cost %g above bound %g", cost, RatioBoundA(ins)*opt)
	}

	b, err := NewAlgorithmB(ins.Types)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(Run(b, ins)); err != nil {
		t.Fatal(err)
	}

	cAlg, err := NewAlgorithmC(ins.Types, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Feasible(Run(cAlg, ins)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBaselines(t *testing.T) {
	ins := twoType()
	for _, mk := range []func() (Online, error){
		func() (Online, error) { return NewAllOn(twoType().Types) },
		func() (Online, error) { return NewLoadTracking(twoType().Types) },
		func() (Online, error) { return NewSkiRental(twoType().Types) },
		func() (Online, error) { return NewLookahead(twoType().Types, 3) },
	} {
		alg, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := ins.Feasible(Run(alg, ins)); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
	}
	if _, err := NewLCP(twoType().Types); err == nil {
		t.Error("LCP should reject d=2")
	}
	homog := &Instance{
		Types: []ServerType{{
			Count: 4, SwitchCost: 2, MaxLoad: 1,
			Cost: Static{F: Constant{C: 1}},
		}},
		Lambda: Steps(12, []float64{1, 3}, 3),
	}
	lcp, err := NewLCP(homog.Types)
	if err != nil {
		t.Fatal(err)
	}
	if err := homog.Feasible(Run(lcp, homog)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicComparison(t *testing.T) {
	ins := twoType()
	cmp, err := NewComparison(ins)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewAlgorithmA(ins.Types)
	m := cmp.RunOnline(a)
	if m.Ratio < 1-1e-9 {
		t.Errorf("ratio %g", m.Ratio)
	}
	if cmp.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(Diurnal(10, 0, 5, 5, 0)) != 10 {
		t.Error("Diurnal length")
	}
	if len(Steps(10, []float64{1}, 2)) != 10 {
		t.Error("Steps length")
	}
	if len(OnOff(10, 1, 0, 1, 1)) != 10 {
		t.Error("OnOff length")
	}
}

func TestPublicCostFuncs(t *testing.T) {
	pl, err := NewPiecewiseLinear([]float64{0, 1}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Value(0.5) != 1.5 {
		t.Error("piecewise value")
	}
	if _, err := NewPiecewiseLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("invalid curve should error")
	}
	var f CostFunc = Scaled{F: Constant{C: 4}, Factor: 0.5}
	if f.Value(0) != 2 {
		t.Error("scaled value")
	}
}

func TestPublicCI(t *testing.T) {
	ins := twoType()
	// Static idle costs 1 and 3, β 2 and 8: c(I) = 1/2 + 3/8.
	if got, want := CI(ins), 0.875; math.Abs(got-want) > 1e-12 {
		t.Errorf("CI = %g, want %g", got, want)
	}
	if got, want := RatioBoundB(ins), 2*2+1+0.875; math.Abs(got-want) > 1e-12 {
		t.Errorf("RatioBoundB = %g, want %g", got, want)
	}
}

func TestPublicPrefixTracker(t *testing.T) {
	ins := twoType()
	tr, err := NewPrefixTracker(ins, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for !tr.Done() {
		_, last = tr.Advance()
	}
	opt, _ := OptimalCost(ins)
	if math.Abs(last-opt) > 1e-9 {
		t.Errorf("tracker final %g != opt %g", last, opt)
	}
}
