// Command benchjson is the one parser behind the repo's benchmark gates:
// it reads and rewrites the BENCH_*.json baselines and parses `go test
// -bench` output, so scripts/benchsmoke.sh and scripts/benchscale.sh
// need no non-Go tooling (the former shelled out to python3 for every
// baseline lookup).
//
// Subcommands:
//
//	baseline -file BENCH_x.json -bench Name [-field ns_per_op]
//	    Print one recorded field of one benchmark as an integer.
//
//	numcpu
//	    Print runtime.NumCPU() — the rig's physically available cores,
//	    as opposed to GOMAXPROCS, which -cpu oversubscribes at will.
//
//	scale -file BENCH_x.json -bench Name [-slots N] [-mineff F]
//	      [-maxover F] [-gate] [-update] [-date YYYY-MM-DD]
//	    Read `go test -bench -cpu c1,c2,...` output on stdin, extract the
//	    named benchmark's per-cpu-count entries, derive speedups vs one
//	    CPU (and slots/sec when -slots is given), print the scaling
//	    table, and optionally:
//	      -gate    enforce scaling: for cpu counts the rig actually has
//	               (c <= NumCPU), speedup must reach mineff*c; for
//	               oversubscribed counts (c > NumCPU) wall time must stay
//	               within maxover of the 1-cpu run — contention, not
//	               parallelism, is what an oversubscribed run measures.
//	      -update  merge the entries into the file's "cpu_counts" section
//	               (replacing same-name entries, keeping other
//	               benchmarks') and refresh its num_cpu stamp.
//
// Gates are self-relative — ratios between cpu counts of one run on one
// machine — so they hold on any rig, unlike absolute ns baselines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchFile mirrors the BENCH_*.json schema with a fixed key order so a
// rewrite round-trips cleanly; benchmark entries are kept raw because
// each suite records bespoke fields (memo, workers, previous, ...).
type benchFile struct {
	Suite       string            `json:"suite"`
	Description string            `json:"description"`
	Regenerate  string            `json:"regenerate,omitempty"`
	Date        string            `json:"date"`
	Goos        string            `json:"goos,omitempty"`
	Goarch      string            `json:"goarch,omitempty"`
	CPU         string            `json:"cpu,omitempty"`
	Gomaxprocs  int               `json:"gomaxprocs,omitempty"`
	NumCPU      int               `json:"num_cpu,omitempty"`
	Benchmarks  []json.RawMessage `json:"benchmarks"`
	CPUCounts   *cpuCounts        `json:"cpu_counts,omitempty"`
	Note        string            `json:"note,omitempty"`
	Previous    json.RawMessage   `json:"previous,omitempty"`
}

// cpuCounts is the multi-core scaling section: one entry per benchmark
// per -cpu count, with ratios derived against the 1-cpu entry.
type cpuCounts struct {
	Date    string     `json:"date"`
	NumCPU  int        `json:"num_cpu"`
	Note    string     `json:"note,omitempty"`
	Entries []cpuEntry `json:"entries"`
}

type cpuEntry struct {
	Name        string  `json:"name"`
	CPU         int     `json:"cpu"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	SlotsPerSec float64 `json:"slots_per_sec,omitempty"`
	SpeedupVs1  float64 `json:"speedup_vs_1cpu,omitempty"`
	Efficiency  float64 `json:"scaling_efficiency,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		die("usage: benchjson <baseline|numcpu|scale> [flags]")
	}
	switch os.Args[1] {
	case "baseline":
		cmdBaseline(os.Args[2:])
	case "numcpu":
		fmt.Println(runtime.NumCPU())
	case "scale":
		cmdScale(os.Args[2:])
	default:
		die("benchjson: unknown subcommand %q", os.Args[1])
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func loadFile(path string) *benchFile {
	data, err := os.ReadFile(path)
	if err != nil {
		die("benchjson: %v", err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		die("benchjson: %s: %v", path, err)
	}
	return &f
}

func cmdBaseline(args []string) {
	var file, bench, field string
	fs := flagSet("baseline", args, map[string]*string{
		"file": &file, "bench": &bench, "field": &field,
	}, nil, nil)
	_ = fs
	if field == "" {
		field = "ns_per_op"
	}
	if file == "" || bench == "" {
		die("benchjson baseline: -file and -bench are required")
	}
	f := loadFile(file)
	for _, raw := range f.Benchmarks {
		var entry map[string]any
		if err := json.Unmarshal(raw, &entry); err != nil {
			die("benchjson: %s: %v", file, err)
		}
		if entry["name"] != bench {
			continue
		}
		v, ok := entry[field].(float64)
		if !ok {
			die("benchjson: %s: benchmark %q has no numeric field %q", file, bench, field)
		}
		fmt.Println(int64(v))
		return
	}
	die("benchjson: %s: no benchmark named %q", file, bench)
}

// flagSet is a tiny -key value parser (the stdlib flag package would do,
// but subcommand flag errors read better with one consistent usage line).
func flagSet(cmd string, args []string, strs map[string]*string, floats map[string]*float64, bools map[string]*bool) bool {
	for i := 0; i < len(args); i++ {
		name := strings.TrimPrefix(args[i], "-")
		if b, ok := bools[name]; ok {
			*b = true
			continue
		}
		if i+1 >= len(args) {
			die("benchjson %s: flag -%s needs a value", cmd, name)
		}
		if s, ok := strs[name]; ok {
			*s = args[i+1]
			i++
			continue
		}
		if fp, ok := floats[name]; ok {
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				die("benchjson %s: -%s: %v", cmd, name, err)
			}
			*fp = v
			i++
			continue
		}
		die("benchjson %s: unknown flag %q", cmd, args[i])
	}
	return true
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName[/sub][-procs]  iters  N ns/op [ N B/op  N allocs/op]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// parseBench extracts the named benchmark's entries from bench output.
func parseBench(lines []string, bench string) []cpuEntry {
	var out []cpuEntry
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(line)
		if m == nil || m[1] != bench {
			continue
		}
		cpu := 1
		if m[2] != "" {
			cpu, _ = strconv.Atoi(m[2])
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		e := cpuEntry{Name: bench, CPU: cpu, Iterations: iters, NsPerOp: ns}
		if m[5] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			e.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CPU < out[j].CPU })
	return out
}

func cmdScale(args []string) {
	var file, bench, date string
	var slots, mineff, maxover, gatemax float64
	var gate, update bool
	flagSet("scale", args,
		map[string]*string{"file": &file, "bench": &bench, "date": &date},
		map[string]*float64{"slots": &slots, "mineff": &mineff, "maxover": &maxover, "gatemax": &gatemax},
		map[string]*bool{"gate": &gate, "update": &update})
	if gatemax == 0 {
		gatemax = 4 // gate the linear floor up to 4 cpus; larger counts report only
	}
	if bench == "" {
		die("benchjson scale: -bench is required")
	}
	if date == "" {
		date = time.Now().Format("2006-01-02")
	}

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	entries := parseBench(lines, bench)
	if len(entries) == 0 {
		die("benchjson scale: no %q entries in input", bench)
	}
	var base *cpuEntry
	for i := range entries {
		if entries[i].CPU == 1 {
			base = &entries[i]
		}
	}
	if base == nil {
		die("benchjson scale: %q has no -cpu 1 entry to anchor ratios", bench)
	}
	numCPU := runtime.NumCPU()
	for i := range entries {
		e := &entries[i]
		if slots > 0 {
			e.SlotsPerSec = round2(slots * 1e9 / e.NsPerOp)
		}
		e.SpeedupVs1 = round3(base.NsPerOp / e.NsPerOp)
		e.Efficiency = round3(e.SpeedupVs1 / float64(e.CPU))
	}

	fmt.Printf("benchscale: %s (NumCPU=%d)\n", bench, numCPU)
	fmt.Printf("  %-6s %14s %14s %9s %11s\n", "cpu", "ns/op", "slots/sec", "speedup", "efficiency")
	for _, e := range entries {
		slotsCol := "-"
		if e.SlotsPerSec > 0 {
			slotsCol = fmt.Sprintf("%.0f", e.SlotsPerSec)
		}
		fmt.Printf("  %-6d %14.0f %14s %8.2fx %11.2f\n", e.CPU, e.NsPerOp, slotsCol, e.SpeedupVs1, e.Efficiency)
	}

	failed := false
	for _, e := range entries {
		if e.CPU == 1 {
			continue
		}
		if e.CPU <= numCPU && float64(e.CPU) <= gatemax && mineff > 0 {
			want := mineff * float64(e.CPU)
			status := "PASS"
			if e.SpeedupVs1 < want {
				status, failed = "FAIL", true
			}
			fmt.Printf("benchscale: %s cpu=%d speedup %.2fx (floor %.2fx = %.2f of linear) %s\n",
				bench, e.CPU, e.SpeedupVs1, want, mineff, status)
		}
		if e.CPU > numCPU && maxover > 0 {
			ratio := e.NsPerOp / base.NsPerOp
			status := "PASS"
			if ratio > maxover {
				status, failed = "FAIL", true
			}
			fmt.Printf("benchscale: %s cpu=%d oversubscribed on %d core(s): %.2fx of 1-cpu wall time (ceiling %.2fx) %s\n",
				bench, e.CPU, numCPU, ratio, maxover, status)
		}
	}

	if update {
		if file == "" {
			die("benchjson scale: -update requires -file")
		}
		f := loadFile(file)
		cc := f.CPUCounts
		if cc == nil {
			cc = &cpuCounts{}
			f.CPUCounts = cc
		}
		kept := cc.Entries[:0]
		for _, e := range cc.Entries {
			if e.Name != bench {
				kept = append(kept, e)
			}
		}
		cc.Entries = append(kept, entries...)
		sort.Slice(cc.Entries, func(i, j int) bool {
			if cc.Entries[i].Name != cc.Entries[j].Name {
				return cc.Entries[i].Name < cc.Entries[j].Name
			}
			return cc.Entries[i].CPU < cc.Entries[j].CPU
		})
		cc.Date = date
		cc.NumCPU = numCPU
		f.NumCPU = numCPU
		out, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			die("benchjson: %v", err)
		}
		if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
			die("benchjson: %v", err)
		}
		fmt.Printf("benchscale: updated %s cpu_counts (%s)\n", file, bench)
	}

	if gate && failed {
		die("benchscale: FAIL — %s scaling gates not met", bench)
	}
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
