#!/usr/bin/env bash
# Multi-core scaling rig: run the parallel serving, suite and layer-memo
# benchmarks at -cpu 1,2,4,8 and derive scaling tables with
# scripts/benchjson (the same Go parser benchsmoke.sh uses — no python3
# or other non-Go tooling).
#
# Usage:
#   benchscale.sh            full benchtime, print scaling tables
#   benchscale.sh --check    CI smoke: reduced benchtime, gates ON
#   benchscale.sh --update   full benchtime, write the "cpu_counts"
#                            sections of BENCH_serve/engine/solver.json
#
# Gates are self-relative (ratios between cpu counts of one run), so
# they hold on any machine, and they adapt to the rig via
# runtime.NumCPU():
#   - cpu counts the rig actually has (c <= NumCPU, up to -gatemax 4):
#     speedup vs -cpu 1 must reach mineff*c — e.g. batch=16 serving must
#     hit 0.625*4 = 2.5x slots/sec at -cpu 4 on a 4-core box.
#   - oversubscribed counts (c > NumCPU, e.g. everything on a 1-core CI
#     container): wall time must stay within maxover of the -cpu 1 run.
#     An oversubscribed run can't show parallel speedup, but it is the
#     sharpest contention detector there is: a serialized hot path
#     (like the pre-sharding single-mutex layer memo, 1.51x slower at
#     -cpu 8 on one core) fails this gate, a contention-free one passes
#     flat.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
CPUS="1,2,4,8"
GATE=""
UPDATE=""
SERVE_BT=50x
SUITE_BT=3x
GC_BT=500000x
HTTP_BT=30x
case "$MODE" in
  --check) GATE="-gate"; SERVE_BT=10x; SUITE_BT=2x; GC_BT=100000x; HTTP_BT=10x ;;
  --update) UPDATE="-update" ;;
  "") ;;
  *) echo "usage: benchscale.sh [--check|--update]" >&2; exit 2 ;;
esac

echo "benchscale: NumCPU=$(go run ./scripts/benchjson numcpu), -cpu $CPUS, mode=${MODE:-report}"

# ---- serving tier: 16 concurrent sessions x 48 slots = 768 slots/op ----
out="$(go test -run '^$' -bench 'BenchmarkServePushParallel$' -benchtime "$SERVE_BT" -benchmem -cpu "$CPUS" ./internal/serve)"
echo "$out"
echo "$out" | go run ./scripts/benchjson scale -file BENCH_serve.json \
  -bench 'BenchmarkServePushParallel/batch=16' -slots 768 -mineff 0.625 -maxover 1.6 $GATE $UPDATE
echo "$out" | go run ./scripts/benchjson scale -file BENCH_serve.json \
  -bench 'BenchmarkServePushParallel/batch=1' -slots 768 -mineff 0.4 -maxover 1.6 $GATE $UPDATE

# ---- HTTP push path: the same 768 slots/op over loopback TCP     ----
# ---- (16 keep-alive connections through the wire codec)           ----
# batch=1 is round-trip-latency-bound, so it only carries the
# oversubscription (contention) gate; batch=16 must show real scaling.
out="$(go test -run '^$' -bench 'BenchmarkHTTPPushParallel$' -benchtime "$HTTP_BT" -benchmem -cpu "$CPUS" ./internal/serve)"
echo "$out"
echo "$out" | go run ./scripts/benchjson scale -file BENCH_serve.json \
  -bench 'BenchmarkHTTPPushParallel/batch=16' -slots 768 -mineff 0.4 -maxover 1.6 $GATE $UPDATE
echo "$out" | go run ./scripts/benchjson scale -file BENCH_serve.json \
  -bench 'BenchmarkHTTPPushParallel/batch=1' -slots 768 -maxover 1.6 $GATE $UPDATE

# ---- scenario suite: 8 scenarios fanned over one worker per cpu ----
# Chunked distribution over 8 uneven scenarios bounds speedup by the
# heaviest chunk, hence the lower floor.
out="$(go test -run '^$' -bench 'BenchmarkSuiteParallel$' -benchtime "$SUITE_BT" -benchmem -cpu "$CPUS" .)"
echo "$out"
echo "$out" | go run ./scripts/benchjson scale -file BENCH_engine.json \
  -bench 'BenchmarkSuiteParallel' -mineff 0.35 -maxover 1.5 $GATE $UPDATE

# ---- layer-memo contention: hit-heavy must scale, insert-heavy must ----
# ---- not collapse (copy-on-write inserts serialize per shard)       ----
out="$(go test -run '^$' -bench 'BenchmarkGCacheParallel' -benchtime "$GC_BT" -benchmem -cpu "$CPUS" ./internal/solver)"
echo "$out"
echo "$out" | go run ./scripts/benchjson scale -file BENCH_solver.json \
  -bench 'BenchmarkGCacheParallel/hit' -mineff 0.5 -maxover 1.6 $GATE $UPDATE
echo "$out" | go run ./scripts/benchjson scale -file BENCH_solver.json \
  -bench 'BenchmarkGCacheParallel/insert' -maxover 1.75 $GATE $UPDATE

echo "benchscale: OK"
