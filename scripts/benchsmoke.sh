#!/usr/bin/env bash
# Benchmark smoke gate: run the scenario-suite, stream-session,
# serve-push and HTTP-push benchmarks once and fail if wall-clock
# regressed more than 2x against the recorded baselines
# (BENCH_engine.json, BENCH_stream.json, BENCH_serve.json). Timing
# across heterogeneous CI runners is noisy, which is why the gate is a
# coarse 2x, not a tight threshold; allocation counts are
# machine-independent and gated at +10%. The solver's layer-eval
# microbench (BENCH_solver.json) is run and reported for the record but
# not gated. Baseline lookups go through scripts/benchjson (go run), so
# the gate needs no tooling beyond the Go toolchain; multi-core scaling
# is gated separately by scripts/benchscale.sh.

baseline() { go run ./scripts/benchjson baseline -file "$1" -bench "$2" -field "$3"; }
set -euo pipefail
cd "$(dirname "$0")/.."

# ---- scenario suite ----
# 3 iterations, matching the recorded baseline: the first op pays the
# layer-memo warm-up and is amortised, exactly as in BENCH_engine.json.
out="$(go test -run '^$' -bench 'BenchmarkSuite(Serial|Parallel)$' -benchtime 3x . )"
echo "$out"

cur_ns="$(echo "$out" | awk '/^BenchmarkSuiteSerial/ {print int($3)}')"
cur_allocs="$(echo "$out" | awk '/^BenchmarkSuiteSerial/ {print int($7)}')"
if [ -z "$cur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkSuiteSerial output" >&2
  exit 1
fi

base_ns="$(baseline BENCH_engine.json BenchmarkSuiteSerial ns_per_op)"
base_allocs="$(baseline BENCH_engine.json BenchmarkSuiteSerial allocs_per_op)"

echo "benchsmoke: suite ns/op current=$cur_ns baseline=$base_ns (limit 2x)"
echo "benchsmoke: suite allocs/op current=$cur_allocs baseline=$base_allocs (limit 1.1x)"

if [ "$cur_ns" -gt "$((base_ns * 2))" ]; then
  echo "benchsmoke: FAIL — suite benchmark regressed more than 2x vs BENCH_engine.json" >&2
  exit 1
fi
if [ "$cur_allocs" -gt "$((base_allocs * 11 / 10))" ]; then
  echo "benchsmoke: FAIL — suite allocations regressed more than 10% vs BENCH_engine.json" >&2
  exit 1
fi

# ---- stream session ----
# 50 iterations, matching the recorded baseline: the first op pays the
# layer-memo warm-up, so a single iteration would measure only that.
sout="$(go test -run '^$' -bench 'BenchmarkStreamSession$' -benchtime 50x -benchmem . )"
echo "$sout"

scur_ns="$(echo "$sout" | awk '/^BenchmarkStreamSession/ {print int($3)}')"
scur_allocs="$(echo "$sout" | awk '/^BenchmarkStreamSession/ {print int($7)}')"
if [ -z "$scur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkStreamSession output" >&2
  exit 1
fi

sbase_ns="$(baseline BENCH_stream.json BenchmarkStreamSession ns_per_op)"
sbase_allocs="$(baseline BENCH_stream.json BenchmarkStreamSession allocs_per_op)"

echo "benchsmoke: stream ns/op current=$scur_ns baseline=$sbase_ns (limit 2x)"
echo "benchsmoke: stream allocs/op current=$scur_allocs baseline=$sbase_allocs (limit 1.1x)"

if [ "$scur_ns" -gt "$((sbase_ns * 2))" ]; then
  echo "benchsmoke: FAIL — stream benchmark regressed more than 2x vs BENCH_stream.json" >&2
  exit 1
fi
if [ "$scur_allocs" -gt "$((sbase_allocs * 11 / 10))" ]; then
  echo "benchsmoke: FAIL — stream allocations regressed more than 10% vs BENCH_stream.json" >&2
  exit 1
fi

# ---- serve manager push (serial + parallel) ----
# 50 iterations, same methodology as the stream baseline (first op pays
# the layer-memo warm-up and is amortised). The parallel benchmark's
# unbatched variant is gated; batch=16 is reported for the record.
vout="$(go test -run '^$' -bench 'BenchmarkServePush(Parallel)?$' -benchtime 50x -benchmem ./internal/serve )"
echo "$vout"

vcur_ns="$(echo "$vout" | awk '/^BenchmarkServePush(-[0-9]+)? / {print int($3)}')"
vcur_allocs="$(echo "$vout" | awk '/^BenchmarkServePush(-[0-9]+)? / {print int($7)}')"
if [ -z "$vcur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkServePush output" >&2
  exit 1
fi

vbase_ns="$(baseline BENCH_serve.json BenchmarkServePush ns_per_op)"
vbase_allocs="$(baseline BENCH_serve.json BenchmarkServePush allocs_per_op)"

echo "benchsmoke: serve ns/op current=$vcur_ns baseline=$vbase_ns (limit 2x)"
echo "benchsmoke: serve allocs/op current=$vcur_allocs baseline=$vbase_allocs (limit 1.1x)"

if [ "$vcur_ns" -gt "$((vbase_ns * 2))" ]; then
  echo "benchsmoke: FAIL — serve benchmark regressed more than 2x vs BENCH_serve.json" >&2
  exit 1
fi
if [ "$vcur_allocs" -gt "$((vbase_allocs * 11 / 10))" ]; then
  echo "benchsmoke: FAIL — serve allocations regressed more than 10% vs BENCH_serve.json" >&2
  exit 1
fi

# ---- serve parallel push (16 concurrent sessions, unbatched) ----
pcur_ns="$(echo "$vout" | awk '/^BenchmarkServePushParallel\/batch=1[- ]/ {print int($3)}')"
pcur_allocs="$(echo "$vout" | awk '/^BenchmarkServePushParallel\/batch=1[- ]/ {print int($7)}')"
if [ -z "$pcur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkServePushParallel/batch=1 output" >&2
  exit 1
fi

pbase_ns="$(baseline BENCH_serve.json 'BenchmarkServePushParallel/batch=1' ns_per_op)"
pbase_allocs="$(baseline BENCH_serve.json 'BenchmarkServePushParallel/batch=1' allocs_per_op)"

echo "benchsmoke: serve-parallel ns/op current=$pcur_ns baseline=$pbase_ns (limit 2x)"
echo "benchsmoke: serve-parallel allocs/op current=$pcur_allocs baseline=$pbase_allocs (limit 1.1x)"

if [ "$pcur_ns" -gt "$((pbase_ns * 2))" ]; then
  echo "benchsmoke: FAIL — parallel serve benchmark regressed more than 2x vs BENCH_serve.json" >&2
  exit 1
fi
if [ "$pcur_allocs" -gt "$((pbase_allocs * 11 / 10))" ]; then
  echo "benchsmoke: FAIL — parallel serve allocations regressed more than 10% vs BENCH_serve.json" >&2
  exit 1
fi

# ---- HTTP push path (wire codec, e2e + handler-isolated) ----
# 2000 iterations against a live in-process httptest server. The e2e
# number includes loopback TCP and the net/http serving stack; the
# Handler number strips both, so it is the codec-dominated layer where
# the wire codec's allocs/op win is pinned. The codec=reflect variants
# re-run here for the record — they are the recorded "previous" in
# BENCH_serve.json — but only codec=wire is gated.
hout="$(go test -run '^$' -bench 'BenchmarkHTTPPush(Handler)?$' -benchtime 2000x -benchmem ./internal/serve )"
echo "$hout"

hcur_ns="$(echo "$hout" | awk '/^BenchmarkHTTPPush\/codec=wire\/batch=1[- ]/ {print int($3)}')"
hcur_allocs="$(echo "$hout" | awk '/^BenchmarkHTTPPush\/codec=wire\/batch=1[- ]/ {print int($7)}')"
if [ -z "$hcur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkHTTPPush/codec=wire/batch=1 output" >&2
  exit 1
fi

hbase_ns="$(baseline BENCH_serve.json 'BenchmarkHTTPPush/codec=wire/batch=1' ns_per_op)"
hbase_allocs="$(baseline BENCH_serve.json 'BenchmarkHTTPPush/codec=wire/batch=1' allocs_per_op)"

echo "benchsmoke: http-push ns/op current=$hcur_ns baseline=$hbase_ns (limit 2x)"
echo "benchsmoke: http-push allocs/op current=$hcur_allocs baseline=$hbase_allocs (limit 1.1x)"

if [ "$hcur_ns" -gt "$((hbase_ns * 2))" ]; then
  echo "benchsmoke: FAIL — HTTP push benchmark regressed more than 2x vs BENCH_serve.json" >&2
  exit 1
fi
if [ "$hcur_allocs" -gt "$((hbase_allocs * 11 / 10))" ]; then
  echo "benchsmoke: FAIL — HTTP push allocations regressed more than 10% vs BENCH_serve.json" >&2
  exit 1
fi

dcur_ns="$(echo "$hout" | awk '/^BenchmarkHTTPPushHandler\/codec=wire[- ]/ {print int($3)}')"
dcur_allocs="$(echo "$hout" | awk '/^BenchmarkHTTPPushHandler\/codec=wire[- ]/ {print int($7)}')"
if [ -z "$dcur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkHTTPPushHandler/codec=wire output" >&2
  exit 1
fi

dbase_ns="$(baseline BENCH_serve.json 'BenchmarkHTTPPushHandler/codec=wire' ns_per_op)"
dbase_allocs="$(baseline BENCH_serve.json 'BenchmarkHTTPPushHandler/codec=wire' allocs_per_op)"

echo "benchsmoke: http-handler ns/op current=$dcur_ns baseline=$dbase_ns (limit 2x)"
echo "benchsmoke: http-handler allocs/op current=$dcur_allocs baseline=$dbase_allocs (limit 1.1x)"

if [ "$dcur_ns" -gt "$((dbase_ns * 2))" ]; then
  echo "benchsmoke: FAIL — HTTP handler benchmark regressed more than 2x vs BENCH_serve.json" >&2
  exit 1
fi
if [ "$dcur_allocs" -gt "$((dbase_allocs * 11 / 10))" ]; then
  echo "benchsmoke: FAIL — HTTP handler allocations regressed more than 10% vs BENCH_serve.json" >&2
  exit 1
fi

# ---- admission accept path (wait-free gate) ----
# The admission gates sit on every push before any work happens, so the
# accept path must stay allocation-free — gated at exactly 0, not a
# ratio, because a single alloc here is a design regression (the token
# bucket is a CAS loop on purpose). ns/op is informational: tens of
# nanoseconds drown in timer noise across runners. The deny path is
# allowed its one alloc (the retryAfterError carrying the computed wait).
aout="$(go test -run '^$' -bench 'BenchmarkAdmission$' -benchtime 10000x -benchmem ./internal/serve )"
echo "$aout"

acur_allocs="$(echo "$aout" | awk '/^BenchmarkAdmission\/admit[- ]/ {print int($7)}')"
if [ -z "$acur_allocs" ]; then
  echo "benchsmoke: could not parse BenchmarkAdmission/admit output" >&2
  exit 1
fi
abase_ns="$(baseline BENCH_serve.json 'BenchmarkAdmission/admit' ns_per_op)"
acur_ns="$(echo "$aout" | awk '/^BenchmarkAdmission\/admit[- ]/ {print int($3)}')"
echo "benchsmoke: admission-admit allocs/op current=$acur_allocs (limit: exactly 0)"
echo "benchsmoke: admission-admit ns/op current=${acur_ns:-?} baseline=$abase_ns (informational)"

if [ "$acur_allocs" -gt 0 ]; then
  echo "benchsmoke: FAIL — admission accept path allocates ($acur_allocs allocs/op, must be 0)" >&2
  exit 1
fi

# ---- /metrics scrape (lock-free exporter) ----
# Like the admission accept path, the exporter is gated on allocations
# at exactly 0, not a ratio: appendPromText writes into the caller's
# reused buffer from atomic loads only, so any allocation means the
# exporter grew per-scrape intermediate state. ns/op is additionally
# gated at the coarse 2x — the scrape runs on every prometheus poll and
# must stay microseconds even with all 256 histogram buckets folded.
mout="$(go test -run '^$' -bench 'BenchmarkMetricsScrape$' -benchtime 10000x -benchmem ./internal/serve )"
echo "$mout"

mcur_ns="$(echo "$mout" | awk '/^BenchmarkMetricsScrape(-[0-9]+)? / {print int($3)}')"
mcur_allocs="$(echo "$mout" | awk '/^BenchmarkMetricsScrape(-[0-9]+)? / {print int($7)}')"
if [ -z "$mcur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkMetricsScrape output" >&2
  exit 1
fi

mbase_ns="$(baseline BENCH_serve.json BenchmarkMetricsScrape ns_per_op)"

echo "benchsmoke: metrics-scrape ns/op current=$mcur_ns baseline=$mbase_ns (limit 2x)"
echo "benchsmoke: metrics-scrape allocs/op current=$mcur_allocs (limit: exactly 0)"

if [ "$mcur_ns" -gt "$((mbase_ns * 2))" ]; then
  echo "benchsmoke: FAIL — /metrics scrape regressed more than 2x vs BENCH_serve.json" >&2
  exit 1
fi
if [ "$mcur_allocs" -gt 0 ]; then
  echo "benchsmoke: FAIL — /metrics scrape allocates ($mcur_allocs allocs/op, must be 0)" >&2
  exit 1
fi

# ---- WAL append hot path (sync=never) ----
# The write-ahead path runs under every accepted slot of a WAL-enabled
# session, so like the admission gate it is held at exactly 0 allocs/op:
# the frame is encoded into the log's reused buffer and written in one
# call. ns/op gets the coarse 2x (it is a page-cache write plus the
# encode). sync=always is re-run for the record but not gated — that
# figure is the rig's fsync latency, not code cost.
wout="$(go test -run '^$' -bench 'BenchmarkWALAppend' -benchtime 10000x -benchmem ./internal/wal )"
echo "$wout"

wcur_ns="$(echo "$wout" | awk '/^BenchmarkWALAppend\/sync=never[- ]/ {print int($3)}')"
wcur_allocs="$(echo "$wout" | awk '/^BenchmarkWALAppend\/sync=never[- ]/ {print int($7)}')"
if [ -z "$wcur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkWALAppend/sync=never output" >&2
  exit 1
fi

wbase_ns="$(baseline BENCH_serve.json 'BenchmarkWALAppend/sync=never' ns_per_op)"

echo "benchsmoke: wal-append ns/op current=$wcur_ns baseline=$wbase_ns (limit 2x)"
echo "benchsmoke: wal-append allocs/op current=$wcur_allocs (limit: exactly 0)"

if [ "$wcur_ns" -gt "$((wbase_ns * 2))" ]; then
  echo "benchsmoke: FAIL — WAL append regressed more than 2x vs BENCH_serve.json" >&2
  exit 1
fi
if [ "$wcur_allocs" -gt 0 ]; then
  echo "benchsmoke: FAIL — WAL append hot path allocates ($wcur_allocs allocs/op, must be 0)" >&2
  exit 1
fi

# ---- solver layer-eval microbench (recorded, informational) ----
lout="$(go test -run '^$' -bench 'BenchmarkLayerEval' -benchtime 10x -benchmem ./internal/solver )"
echo "$lout"
lbase_ns="$(baseline BENCH_solver.json BenchmarkLayerEval ns_per_op)"
lcur_ns="$(echo "$lout" | awk '/^BenchmarkLayerEval(-[0-9]+)? / {print int($3)}')"
echo "benchsmoke: layer-eval ns/op current=${lcur_ns:-?} baseline=$lbase_ns (informational)"

echo "benchsmoke: OK"
