#!/usr/bin/env bash
# Benchmark smoke gate: run the scenario-suite benchmark once and fail if
# wall-clock regressed more than 2x against the recorded baseline
# (BENCH_engine.json). Timing across heterogeneous CI runners is noisy,
# which is why the gate is a coarse 2x, not a tight threshold; allocation
# counts are machine-independent and gated at +10%.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(go test -run '^$' -bench 'BenchmarkSuite(Serial|Parallel)$' -benchtime 1x . )"
echo "$out"

cur_ns="$(echo "$out" | awk '/^BenchmarkSuiteSerial/ {print int($3)}')"
cur_allocs="$(echo "$out" | awk '/^BenchmarkSuiteSerial/ {print int($7)}')"
if [ -z "$cur_ns" ]; then
  echo "benchsmoke: could not parse BenchmarkSuiteSerial output" >&2
  exit 1
fi

base_ns="$(python3 -c 'import json;d=json.load(open("BENCH_engine.json"));print([b["ns_per_op"] for b in d["benchmarks"] if b["name"]=="BenchmarkSuiteSerial"][0])')"
base_allocs="$(python3 -c 'import json;d=json.load(open("BENCH_engine.json"));print([b["allocs_per_op"] for b in d["benchmarks"] if b["name"]=="BenchmarkSuiteSerial"][0])')"

echo "benchsmoke: ns/op current=$cur_ns baseline=$base_ns (limit 2x)"
echo "benchsmoke: allocs/op current=$cur_allocs baseline=$base_allocs (limit 1.1x)"

if [ "$cur_ns" -gt "$((base_ns * 2))" ]; then
  echo "benchsmoke: FAIL — suite benchmark regressed more than 2x vs BENCH_engine.json" >&2
  exit 1
fi
if [ "$cur_allocs" -gt "$((base_allocs * 11 / 10))" ]; then
  echo "benchsmoke: FAIL — suite allocations regressed more than 10% vs BENCH_engine.json" >&2
  exit 1
fi
echo "benchsmoke: OK"
