// Command promcheck lints a Prometheus text exposition read from stdin
// (internal/promlint's checks: parseable samples, naming conventions,
// typed families, cumulative histograms). CI pipes the daemon demo's
// /metrics scrape through it:
//
//	curl -sf http://localhost:8080/metrics | go run ./scripts/promcheck
//
// Exit status 0 means clean; 1 prints the first problem found.
package main

import (
	"fmt"
	"os"

	"repro/internal/promlint"
)

func main() {
	if err := promlint.Lint(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	fmt.Println("promcheck: exposition OK")
}
